//! The one driver loop shared by every runtime.
//!
//! Before this module existed each runtime crate hand-rolled a near-identical
//! ~100-line loop (begin → body → commit/abort → deschedule materialisation →
//! `wakeWaiters` → backoff).  [`run`] is that loop, written once against
//! [`TxEngine`]; the state machine it owns is:
//!
//! ```text
//!            begin(mode) ── body ── try_commit ──ok──▶ wakeWaiters ─▶ return
//!                ▲                      │
//!                │                      ▼ TxCtl
//!   backoff ◀─ Abort            Deschedule(spec)            SwitchToSoftware
//!                │                      │                         │
//!                │     hardware attempt │ software attempt        ▼
//!                │      relog / serial  │ relog → orig → sleep   mode ladder
//!                └──────────────────────┴─────────────────────────┘
//! ```
//!
//! The deschedule hand-off ([`super::deschedule`]) and the post-commit
//! [`super::wake_waiters`] scan are called from here and *only* here, so a
//! future runtime (e.g. a hybrid HTM/STM path) picks up the paper's whole
//! condition-synchronization protocol by implementing the engine trait.

use std::sync::Arc;
use std::time::Instant;

use crate::backoff::Backoff;
use crate::ctl::{AbortReason, TxCtl, TxResult, WaitSpec};
use crate::policy::{CmEvent, CmHistory};
use crate::stats::TxStats;
use crate::thread::ThreadCtx;
use crate::tx::{Tx, TxCommon, TxKind, TxMode};
use crate::waitlist::WakeReason;

use super::engine::TxEngine;
use super::wake;

/// Moves the transaction to `next` mode, counting the change (the
/// `mode_switches` statistic tracks every attempt-to-attempt mode change:
/// ladder escalations, relogs, and post-wake resets alike).
fn switch_mode(mode: &mut TxMode, next: TxMode, thread: &ThreadCtx) {
    if *mode != next {
        TxStats::bump(&thread.stats.mode_switches);
        *mode = next;
    }
}

/// Runs `body` as a transaction on `engine` until it commits, handling
/// re-execution, mode switching, contention management, descheduling and
/// post-commit wake-ups.
pub fn run<E, T, F>(engine: &E, thread: &Arc<ThreadCtx>, body: F) -> T
where
    E: TxEngine,
    F: FnMut(&mut dyn Tx) -> TxResult<T>,
{
    run_kind(engine, thread, TxKind::Update, body)
}

/// [`run`] with an explicit transaction kind.
///
/// A [`TxKind::ReadOnly`] transaction runs software attempts on the snapshot
/// read path (no read set, validation-free commit — see
/// [`crate::config::SnapshotMode`]).  If the body writes, the attempt aborts
/// with [`AbortReason::ReadOnlyWrite`] and is upgraded here to a full
/// [`TxKind::Update`] transaction — re-executed immediately, with no
/// contention management or backoff, since the abort carries no conflict
/// information.  A read-only attempt that deschedules is first re-executed
/// as a logged ([`TxMode::SoftwareRetry`]) attempt so the value-based and
/// Retry-Orig wait mechanisms see a real read set.
pub fn run_kind<E, T, F>(engine: &E, thread: &Arc<ThreadCtx>, kind: TxKind, mut body: F) -> T
where
    E: TxEngine,
    F: FnMut(&mut dyn Tx) -> TxResult<T>,
{
    // Backoff jitter comes from the thread's private RNG (seeded from its
    // id): no shared seed line, and each thread's jitter sequence is
    // deterministic.  Seeds only need to differ across concurrently running
    // transactions.
    let seed = thread.next_backoff_seed();
    let mut backoff = Backoff::new(engine.system().config.backoff, seed);
    let mut mode = engine.initial_mode();
    // The declared kind decides which latency class the transaction reports
    // to; the *current* kind may be upgraded to `Update` mid-flight.
    let declared_ro = kind == TxKind::ReadOnly;
    let started = Instant::now();
    let mut kind = kind;
    // Abort history for the contention policy, reset when a deschedule ends
    // the contention episode (and by policies when they escalate).
    let mut history = CmHistory::default();
    let mut attempts: u32 = 0;
    // How the most recent deschedule of this transaction ended.  Handed to
    // every subsequent attempt through `TxCommon::wake_reason`, so a timed
    // wait's body can observe `Timeout` / `Cancelled` after it is
    // re-executed and give up instead of waiting again.  Sticky across
    // conflict aborts (the fact that the wait timed out is not undone by a
    // failed re-execution attempt); overwritten by the next deschedule;
    // scoped to this `run` call, so the flag never leaks into a later
    // transaction.
    let mut pending_wake: Option<WakeReason> = None;

    loop {
        let mut common = TxCommon::new(Arc::clone(thread), mode, attempts).with_kind(kind);
        common.wake_reason = pending_wake;
        let mut tx = engine.begin(common);
        let ctl = match body(&mut tx) {
            Ok(value) => match engine.try_commit(&mut tx) {
                Ok(outcome) => {
                    // Release attempt-held resources (e.g. the HTM serial
                    // lock's bookkeeping) before running wake-up transactions.
                    drop(tx);
                    if outcome.hardware {
                        TxStats::bump(&thread.stats.hw_commits);
                    } else {
                        TxStats::bump(&thread.stats.sw_commits);
                    }
                    if outcome.serial {
                        TxStats::bump(&thread.stats.serial_commits);
                    }
                    if kind == TxKind::ReadOnly && outcome.hardware && !outcome.was_writer {
                        // Hardware commits of a declared-read-only
                        // transaction that wrote nothing are free the same
                        // way software snapshot commits are (which count
                        // themselves in the engines).
                        TxStats::bump(&thread.stats.ro_fast_commits);
                    }
                    let hist = if declared_ro {
                        &thread.stats.ro_tx_latency
                    } else {
                        &thread.stats.update_tx_latency
                    };
                    let elapsed_nanos = started.elapsed().as_nanos() as u64;
                    hist.record(elapsed_nanos);
                    if let Some(class) = thread.op_class() {
                        // Workload-declared operation class: the same
                        // whole-operation latency (retries, backoff and
                        // upgrades included) also lands in the class's own
                        // histogram, so reports can show tail latency per
                        // get/put/delete/scan rather than per commit kind.
                        thread.stats.op_histogram(class).record(elapsed_nanos);
                    }
                    if outcome.was_writer {
                        // Post-commit wake-ups: the paper's value-based
                        // mechanism, targeted at the shards covering the
                        // commit's write-set stripes, then any engine-
                        // specific extras (the Retry-Orig lock-set
                        // intersection on the STMs).  The empty-registry
                        // check comes first so the common no-sleeper case
                        // pays one atomic load — building the wake set
                        // clones the commit's stripe list, which would be
                        // wasted work.  A waiter registering after this
                        // check is covered by its own double-check, which
                        // runs after our (completed) commit.
                        if !engine.system().waiters.is_empty() {
                            let wake_set = engine.committed_stripes(&outcome);
                            wake::wake_waiters_matching(engine, thread, &wake_set);
                        }
                        engine.after_writer_commit(thread, &outcome);
                    }
                    return value;
                }
                Err(ctl) => ctl,
            },
            Err(ctl) => ctl,
        };

        attempts += 1;
        let hardware_attempt = engine.attempt_is_hardware(&tx);
        match ctl {
            TxCtl::Abort(reason) => {
                engine.rollback(&mut tx);
                drop(tx);
                if hardware_attempt {
                    TxStats::bump(&thread.stats.hw_aborts);
                } else {
                    TxStats::bump(&thread.stats.sw_aborts);
                }
                if let AbortReason::Explicit(_) = reason {
                    // Program-requested restarts (the Restart baseline) are
                    // control flow, not contention: re-execute immediately
                    // and feed nothing to the policy.
                    TxStats::bump(&thread.stats.explicit_aborts);
                } else if reason == AbortReason::ReadOnlyWrite {
                    // The declared-read-only body wrote: upgrade to a full
                    // update transaction and re-execute immediately.  Like
                    // explicit aborts this is control flow, not contention —
                    // nothing conflicted, so the policy sees nothing.
                    TxStats::bump(&thread.stats.ro_upgrades);
                    kind = TxKind::Update;
                } else {
                    // Everything else is the contention manager's call:
                    // back off, re-execute immediately, or climb one rung
                    // of the engine's mode ladder (hardware → software →
                    // serial) so the transaction is guaranteed to finish.
                    let event = CmEvent {
                        reason,
                        hardware: hardware_attempt,
                        mode,
                        hw_budget: engine.system().config.htm.max_attempts,
                    };
                    history.note(&event);
                    let action = engine.system().policy().on_abort(&mut history, &event);
                    if action.escalate {
                        TxStats::bump(&thread.stats.cm_escalations);
                        let next = engine.escalated_mode(mode);
                        switch_mode(&mut mode, next, thread);
                    }
                    if action.backoff {
                        // A thread about to spin has time to spare: advance
                        // the lazily driven timer wheel so timed waiters are
                        // expired promptly even when no writer is
                        // committing.  One atomic load when no timer is
                        // armed.
                        wake::poll_timers(engine, thread);
                        // Jittered exponential backoff (capped via
                        // `BackoffConfig`): the one wait policy for every
                        // contention-class abort, rather than ad-hoc
                        // spinning.
                        backoff.abort_and_wait();
                    }
                }
            }
            TxCtl::Deschedule(spec) if hardware_attempt => {
                // No escape actions in hardware: abort and re-execute in a
                // software mode, value-logging if the request was a Retry
                // (§2.2.3).  Which software mode exists is the engine's
                // call: the pure HTM simulator only has the serial
                // fallback, the hybrid runtime has a real STM path.
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.hw_aborts);
                let next = match spec {
                    WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks => {
                        TxStats::bump(&thread.stats.retry_relogs);
                        TxMode::SoftwareRetry
                    }
                    _ => engine.mode_for_software_switch(mode),
                };
                switch_mode(&mut mode, next, thread);
            }
            TxCtl::Deschedule(WaitSpec::ReadSetValues) if mode != TxMode::SoftwareRetry => {
                // Retry was called before the value log existed: restart in
                // value-logging mode (Algorithm 5, lines 2–5).  This also
                // covers the first attempt after waking up, and serial
                // attempts (whose direct reads are never value-logged).
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.retry_relogs);
                switch_mode(&mut mode, TxMode::SoftwareRetry, thread);
            }
            TxCtl::Deschedule(WaitSpec::OrigReadLocks)
                if engine.supports_orig_retry()
                    && mode != TxMode::Serial
                    && !(kind == TxKind::ReadOnly
                        && mode == TxMode::Software
                        && engine.system().config.snapshot.is_enabled()) =>
            {
                // Snapshot attempts keep no read-orec cover, so a read-only
                // transaction must not reach `deschedule_orig` from `Software`
                // mode (it would publish an empty cover and sleep forever);
                // the guard above routes it through the relog arm below and
                // the logged re-execution lands here with a real cover.
                engine.deschedule_orig(thread, &mut tx);
                drop(tx);
                // The Retry-Orig baseline has no deadline support; its
                // sleeps always end as plain wake-ups.
                pending_wake = Some(WakeReason::Woken);
                switch_mode(&mut mode, TxMode::Software, thread);
            }
            TxCtl::Deschedule(WaitSpec::OrigReadLocks) if mode != TxMode::SoftwareRetry => {
                // Engines without lock metadata — and serial attempts,
                // which hold no read locks to publish — approximate
                // Retry-Orig with the value-based mechanism: relog, then
                // deschedule below.
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.retry_relogs);
                switch_mode(&mut mode, TxMode::SoftwareRetry, thread);
            }
            TxCtl::Deschedule(spec) => {
                // The deadline (if any) was stashed in the attempt metadata
                // by the timed construct (`retry_for` & friends); read it
                // before the attempt is dropped.
                let deadline = tx.common().wait_deadline;
                match engine.materialise_wait(&mut tx, spec) {
                    Ok(cond) => {
                        drop(tx);
                        let outcome = wake::deschedule_until(engine, thread, cond, deadline);
                        pending_wake = Some(outcome.reason());
                    }
                    Err(_) => {
                        // The wait condition could not be captured
                        // consistently: treat it as an ordinary abort.
                        drop(tx);
                        TxStats::bump(&thread.stats.sw_aborts);
                        backoff.abort_and_wait();
                    }
                }
                // After waking, restart plainly; Retry will re-request value
                // logging if it trips again (the paper resets `is_retry` the
                // same way).  The sleep also ended whatever contention burst
                // the attempt saw, so the backoff window and the policy's
                // abort history start over.
                switch_mode(&mut mode, engine.mode_after_wake(), thread);
                history.reset();
                backoff.reset();
            }
            TxCtl::SwitchToSoftware => {
                engine.rollback(&mut tx);
                drop(tx);
                let next = engine.mode_for_software_switch(mode);
                switch_mode(&mut mode, next, thread);
            }
            TxCtl::BecomeSerial => {
                // Irrevocability on request: every engine honors the
                // system-wide serial gate, so this works identically on the
                // STMs, the HTM simulator and the hybrid runtime.
                engine.rollback(&mut tx);
                drop(tx);
                switch_mode(&mut mode, TxMode::Serial, thread);
            }
        }
    }
}
