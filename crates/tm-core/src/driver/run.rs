//! The one driver loop shared by every runtime.
//!
//! Before this module existed each runtime crate hand-rolled a near-identical
//! ~100-line loop (begin → body → commit/abort → deschedule materialisation →
//! `wakeWaiters` → backoff).  [`run`] is that loop, written once against
//! [`TxEngine`]; the state machine it owns is:
//!
//! ```text
//!            begin(mode) ── body ── try_commit ──ok──▶ wakeWaiters ─▶ return
//!                ▲                      │
//!                │                      ▼ TxCtl
//!   backoff ◀─ Abort            Deschedule(spec)            SwitchToSoftware
//!                │                      │                         │
//!                │     hardware attempt │ software attempt        ▼
//!                │      relog / serial  │ relog → orig → sleep   mode ladder
//!                └──────────────────────┴─────────────────────────┘
//! ```
//!
//! The deschedule hand-off ([`super::deschedule`]) and the post-commit
//! [`super::wake_waiters`] scan are called from here and *only* here, so a
//! future runtime (e.g. a hybrid HTM/STM path) picks up the paper's whole
//! condition-synchronization protocol by implementing the engine trait.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::ctl::{AbortReason, TxCtl, TxResult, WaitSpec};
use crate::stats::TxStats;
use crate::thread::ThreadCtx;
use crate::tx::{Tx, TxCommon, TxMode};
use crate::waitlist::WakeReason;

use super::engine::TxEngine;
use super::wake;

/// Global seed sequence for per-transaction backoff randomisation; seeds
/// only need to differ across concurrently running transactions.
static BACKOFF_SEED: AtomicU64 = AtomicU64::new(1);

/// Runs `body` as a transaction on `engine` until it commits, handling
/// re-execution, mode switching, descheduling and post-commit wake-ups.
pub fn run<E, T, F>(engine: &E, thread: &Arc<ThreadCtx>, mut body: F) -> T
where
    E: TxEngine,
    F: FnMut(&mut dyn Tx) -> TxResult<T>,
{
    let seed = BACKOFF_SEED
        .fetch_add(0x9E37_79B9, Ordering::Relaxed)
        .wrapping_add(thread.id as u64);
    let mut backoff = Backoff::new(engine.system().config.backoff, seed);
    let mut mode = engine.initial_mode();
    let mut hw_failures: u32 = 0;
    let mut attempts: u32 = 0;
    // How the most recent deschedule of this transaction ended.  Handed to
    // every subsequent attempt through `TxCommon::wake_reason`, so a timed
    // wait's body can observe `Timeout` / `Cancelled` after it is
    // re-executed and give up instead of waiting again.  Sticky across
    // conflict aborts (the fact that the wait timed out is not undone by a
    // failed re-execution attempt); overwritten by the next deschedule;
    // scoped to this `run` call, so the flag never leaks into a later
    // transaction.
    let mut pending_wake: Option<WakeReason> = None;

    loop {
        let mut common = TxCommon::new(Arc::clone(thread), mode, attempts);
        common.wake_reason = pending_wake;
        let mut tx = engine.begin(common);
        let ctl = match body(&mut tx) {
            Ok(value) => match engine.try_commit(&mut tx) {
                Ok(outcome) => {
                    // Release attempt-held resources (e.g. the HTM serial
                    // lock's bookkeeping) before running wake-up transactions.
                    drop(tx);
                    if outcome.hardware {
                        TxStats::bump(&thread.stats.hw_commits);
                    } else {
                        TxStats::bump(&thread.stats.sw_commits);
                    }
                    if outcome.was_writer {
                        // Post-commit wake-ups: the paper's value-based
                        // mechanism, targeted at the shards covering the
                        // commit's write-set stripes, then any engine-
                        // specific extras (the Retry-Orig lock-set
                        // intersection on the STMs).  The empty-registry
                        // check comes first so the common no-sleeper case
                        // pays one atomic load — building the wake set
                        // clones the commit's stripe list, which would be
                        // wasted work.  A waiter registering after this
                        // check is covered by its own double-check, which
                        // runs after our (completed) commit.
                        if !engine.system().waiters.is_empty() {
                            let wake_set = engine.committed_stripes(&outcome);
                            wake::wake_waiters_matching(engine, thread, &wake_set);
                        }
                        engine.after_writer_commit(thread, &outcome);
                    }
                    return value;
                }
                Err(ctl) => ctl,
            },
            Err(ctl) => ctl,
        };

        attempts += 1;
        let hardware_attempt = engine.attempt_is_hardware(&tx);
        match ctl {
            TxCtl::Abort(reason) => {
                engine.rollback(&mut tx);
                drop(tx);
                if hardware_attempt {
                    TxStats::bump(&thread.stats.hw_aborts);
                    if let AbortReason::Explicit(_) = reason {
                        // Program-requested restarts (the Restart baseline)
                        // stay speculative; only genuine conflict/capacity
                        // failures count towards the fallback budget.
                        TxStats::bump(&thread.stats.explicit_aborts);
                    } else {
                        hw_failures += 1;
                        // GCC libitm policy: after a bounded number of
                        // speculative failures, suspend concurrency and run
                        // serially so the transaction is guaranteed to finish.
                        if hw_failures >= engine.system().config.htm.max_attempts {
                            mode = TxMode::Serial;
                        }
                    }
                } else {
                    TxStats::bump(&thread.stats.sw_aborts);
                    if let AbortReason::Explicit(_) = reason {
                        TxStats::bump(&thread.stats.explicit_aborts);
                    }
                }
                if reason.is_contention() {
                    // A thread about to spin has time to spare: advance the
                    // lazily driven timer wheel so timed waiters are expired
                    // promptly even when no writer is committing.  One
                    // atomic load when no timer is armed.
                    wake::poll_timers(engine, thread);
                    // Jittered exponential backoff (capped via
                    // `BackoffConfig`): the one wait policy for every
                    // contention-class abort, rather than ad-hoc spinning.
                    backoff.abort_and_wait();
                }
            }
            TxCtl::Deschedule(spec) if hardware_attempt => {
                // No escape actions in hardware: abort and re-execute in a
                // software mode, value-logging if the request was a Retry
                // (§2.2.3).
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.hw_aborts);
                mode = match spec {
                    WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks => {
                        TxStats::bump(&thread.stats.retry_relogs);
                        TxMode::SoftwareRetry
                    }
                    _ => TxMode::Serial,
                };
            }
            TxCtl::Deschedule(WaitSpec::ReadSetValues) if mode != TxMode::SoftwareRetry => {
                // Retry was called before the value log existed: restart in
                // value-logging mode (Algorithm 5, lines 2–5).  This also
                // covers the first attempt after waking up.
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.retry_relogs);
                mode = TxMode::SoftwareRetry;
            }
            TxCtl::Deschedule(WaitSpec::OrigReadLocks) if engine.supports_orig_retry() => {
                engine.deschedule_orig(thread, &mut tx);
                drop(tx);
                // The Retry-Orig baseline has no deadline support; its
                // sleeps always end as plain wake-ups.
                pending_wake = Some(WakeReason::Woken);
                mode = TxMode::Software;
            }
            TxCtl::Deschedule(WaitSpec::OrigReadLocks) if mode != TxMode::SoftwareRetry => {
                // Engines without lock metadata approximate Retry-Orig with
                // the value-based mechanism: relog, then deschedule below.
                engine.rollback(&mut tx);
                drop(tx);
                TxStats::bump(&thread.stats.retry_relogs);
                mode = TxMode::SoftwareRetry;
            }
            TxCtl::Deschedule(spec) => {
                // The deadline (if any) was stashed in the attempt metadata
                // by the timed construct (`retry_for` & friends); read it
                // before the attempt is dropped.
                let deadline = tx.common().wait_deadline;
                match engine.materialise_wait(&mut tx, spec) {
                    Ok(cond) => {
                        drop(tx);
                        let outcome = wake::deschedule_until(engine, thread, cond, deadline);
                        pending_wake = Some(outcome.reason());
                    }
                    Err(_) => {
                        // The wait condition could not be captured
                        // consistently: treat it as an ordinary abort.
                        drop(tx);
                        TxStats::bump(&thread.stats.sw_aborts);
                        backoff.abort_and_wait();
                    }
                }
                // After waking, restart plainly; Retry will re-request value
                // logging if it trips again (the paper resets `is_retry` the
                // same way).  The sleep also ended whatever contention burst
                // the attempt saw, so the backoff window starts over.
                mode = engine.mode_after_wake();
                hw_failures = 0;
                backoff.reset();
            }
            TxCtl::SwitchToSoftware | TxCtl::BecomeSerial => {
                engine.rollback(&mut tx);
                drop(tx);
                mode = engine.mode_for_software_switch(mode);
            }
        }
    }
}
