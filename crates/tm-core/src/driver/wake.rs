//! The Deschedule abstract mechanism (Algorithm 4): parking and waking.
//!
//! A transaction that discovers its precondition does not hold is rolled
//! back by the driver loop, which then calls [`deschedule`] with the
//! materialised wait condition.  `deschedule`:
//!
//! 1. publishes a [`Waiter`] record (condition + semaphore) in the sharded
//!    waiter registry, under every ownership-record stripe its condition
//!    covers (predicate conditions, which name no addresses, go to the
//!    registry's unindexed shard),
//! 2. re-evaluates the condition in a fresh read-only transaction
//!    (the "double-check" of Algorithm 4 lines 6–13) — publishing *before*
//!    checking is what removes the need to validate the read set atomically
//!    with the insertion, and is the key difference from Algorithm 1,
//! 3. sleeps on the semaphore if the condition still does not hold,
//! 4. deregisters itself upon wake-up and returns, at which point the driver
//!    re-executes the original transaction from its checkpoint.
//!
//! Writers call [`wake_waiters_matching`] strictly *after* committing, with
//! the stripes their commit wrote ([`TxEngine::committed_stripes`]): only the
//! shards covering those stripes — plus the unindexed shard — are scanned,
//! so a commit's wake work scales with the sleepers that could actually be
//! affected, not with every sleeper in the system.  The decision to wake is
//! still a computation over (now committed) shared memory, so it never
//! burdens the in-flight transaction — in particular hardware transactions
//! that never deschedule pay nothing beyond an empty-registry check (one
//! atomic load).
//!
//! This logic lives in `tm-core` because the unified driver loop
//! ([`super::run`]) is its only legitimate caller on the hot path; the
//! `condsync` crate re-exports the entry points as part of its public API.
//!
//! [`TxEngine::committed_stripes`]: super::TxEngine::committed_stripes

use std::sync::Arc;
use std::time::Instant;

use crate::ctl::WaitCondition;
use crate::runtime::TmRuntime;
use crate::sem::Semaphore;
use crate::stats::TxStats;
use crate::thread::ThreadCtx;
use crate::waitlist::{Waiter, WakeReason, WakeSet};

/// Outcome of a [`deschedule`] / [`deschedule_until`] call, for the driver
/// loop, statistics and tests.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DescheduleOutcome {
    /// The double-check found the condition already established; the thread
    /// never slept.
    SkippedSleep,
    /// The thread slept (or its deadline had already passed) and was
    /// re-scheduled for the recorded reason.
    Slept(WakeReason),
}

impl DescheduleOutcome {
    /// The wake reason the re-executed transaction should observe.  A
    /// skipped sleep counts as [`WakeReason::Woken`]: the condition held.
    pub fn reason(self) -> WakeReason {
        match self {
            DescheduleOutcome::SkippedSleep => WakeReason::Woken,
            DescheduleOutcome::Slept(reason) => reason,
        }
    }
}

/// Publishes `condition` and blocks the calling thread until a committed
/// writer establishes it (or until the immediate double-check finds it
/// already established).  Unbounded form of [`deschedule_until`].
///
/// The caller (the driver loop) must have completely rolled back the
/// descheduling transaction before calling this, so that the program state
/// is indistinguishable from the transaction never having run (Figure 2.1,
/// time 1).
pub fn deschedule(
    rt: &dyn TmRuntime,
    thread: &Arc<ThreadCtx>,
    condition: WaitCondition,
) -> DescheduleOutcome {
    deschedule_until(rt, thread, condition, None)
}

/// Publishes `condition` and blocks the calling thread until a committed
/// writer establishes it, the optional `deadline` passes, or another thread
/// cancels the wait.
///
/// The timeout state machine (one transition, three exits):
///
/// ```text
///            ┌──────────── register + arm timer ───────────┐
///            │                                              ▼
///  double-check true ──▶ SkippedSleep            asleep (sem.wait_deadline)
///                                                 │          │          │
///                                       writer claim   timer/self   cancel
///                                         Woken         Timeout    Cancelled
///                                                 └──────────┼──────────┘
///                                                claim CAS: exactly one wins
/// ```
///
/// Timeout delivery is doubly covered: the system's lazily polled timer
/// wheel ([`crate::timer::TimerWheel`]) expires the waiter promptly while
/// other threads are running, and the sleeper's own
/// [`Semaphore::wait_deadline`] bounds the sleep even on an otherwise idle
/// system.  Whoever gets there first wins the one [`Waiter::claim`]; the
/// waiter is signalled at most once per sleep regardless.
pub fn deschedule_until(
    rt: &dyn TmRuntime,
    thread: &Arc<ThreadCtx>,
    condition: WaitCondition,
    deadline: Option<Instant>,
) -> DescheduleOutcome {
    let system = rt.system();
    TxStats::bump(&thread.stats.descheds);

    // A fresh semaphore per sleep avoids consuming permits left over from
    // earlier sleeps (a waiter can be woken spuriously and re-deschedule).
    let sem = Arc::new(Semaphore::new());
    // The stripes covering every address whose change could establish the
    // condition; any writer whose commit touches one of them scans the
    // covering shard, which is the no-lost-wakeups invariant.
    let stripes = condition.stripes(&system.orecs);
    let waiter = Waiter::with_deadline(thread.id, condition, Arc::clone(&sem), deadline);

    // Publish first, then double-check.  Any writer that commits after this
    // point will see us in its wakeWaiters scan; any writer that committed
    // before it is covered by the double-check below.
    system.waiters.register(Arc::clone(&waiter), &stripes);
    // Arm the timer wheel only for deadlines still in the future; an
    // already-expired deadline resolves below without ever arming.
    let armed = match deadline {
        Some(d) if d > Instant::now() => {
            system.timers.arm(&waiter);
            true
        }
        _ => false,
    };

    // The double-check is transactional bookkeeping of the wait protocol,
    // not an operation of its own: suspend any workload-declared operation
    // class so its commit does not add a second entry to the operation's
    // latency histogram.
    let op_class = thread.op_class();
    thread.clear_op_class();
    let established = rt.exec_bool(thread, &mut |tx| waiter.condition.should_wake(tx));
    if let Some(class) = op_class {
        thread.set_op_class(class);
    }
    if established {
        // Claim our own wake-up so a concurrent writer does not also signal
        // us; if the writer won the race the permit simply goes unused
        // because the semaphore is private to this sleep.
        waiter.claim(WakeReason::Woken);
        system.waiters.deregister(&waiter, &stripes);
        if armed {
            system.timers.disarm(&waiter);
        }
        TxStats::bump(&thread.stats.desched_skips);
        return DescheduleOutcome::SkippedSleep;
    }

    TxStats::bump(&thread.stats.sleeps);
    match deadline {
        None => sem.wait(),
        Some(d) => {
            if !sem.wait_deadline(d) {
                // The deadline passed with no signal: claim the timeout
                // ourselves.  Losing this claim means a waker (writer, timer
                // poll, or cancel) got in just before us and its reason
                // stands; the permit it posted goes unused, which is fine
                // because the semaphore is private to this sleep.
                waiter.claim(WakeReason::Timeout);
            }
        }
    }
    let reason = waiter.wake_reason().unwrap_or(WakeReason::Woken);
    system.waiters.deregister(&waiter, &stripes);
    if armed {
        system.timers.disarm(&waiter);
    }
    match reason {
        WakeReason::Woken => {}
        WakeReason::Timeout => TxStats::bump(&thread.stats.wake_timeouts),
        WakeReason::Cancelled => TxStats::bump(&thread.stats.wake_cancels),
    }
    DescheduleOutcome::Slept(reason)
}

/// Lazily advances the system's timer wheel, expiring timed waiters whose
/// deadlines have passed.
///
/// Called from the committing-writer wake path (behind the empty-registry
/// fast path) and from the driver's contention-backoff path; costs one
/// atomic load when no timer is armed.
pub fn poll_timers(rt: &dyn TmRuntime, thread: &Arc<ThreadCtx>) {
    let poll = rt.system().timers.poll(Instant::now());
    if poll.ticks > 0 {
        TxStats::add(&thread.stats.timer_ticks, poll.ticks);
    }
}

/// Conservative `wakeWaiters`: scans every shard of the registry.
///
/// Equivalent to [`wake_waiters_matching`] with [`WakeSet::All`]; kept as
/// the public entry point for callers that commit outside the driver loop
/// and do not know their write set.
pub fn wake_waiters(rt: &dyn TmRuntime, thread: &Arc<ThreadCtx>) {
    wake_waiters_matching(rt, thread, &WakeSet::All);
}

/// Scans the waiter-registry shards covered by `wake` after a writer commit
/// and wakes every sleeper whose condition now holds (Algorithm 4,
/// `wakeWaiters`, sharded).
///
/// Each condition is evaluated in its own read-only transaction; on the HTM
/// runtime these run as (simulated) hardware transactions, which is why the
/// paper keeps the wake-up computation small and contention-free.
pub fn wake_waiters_matching(rt: &dyn TmRuntime, thread: &Arc<ThreadCtx>, wake: &WakeSet) {
    let system = rt.system();
    // Fast path: nobody is waiting (the common case, and the reason in-flight
    // transactions see no overhead from the mechanism).
    if system.waiters.is_empty() {
        return;
    }
    // Someone is waiting, so this commit also lends a hand to the timed
    // waiters: advance the lazily driven timer wheel before scanning.  Kept
    // behind the fast path above so the no-sleeper commit stays one atomic
    // load.
    poll_timers(rt, thread);
    if let WakeSet::Stripes(_) = wake {
        TxStats::bump(&thread.stats.wake_targeted);
    }
    // Shallow copy of the relevant shards so the scan happens without
    // holding any registry lock.
    let plan = system.waiters.scan(wake);
    TxStats::add(&thread.stats.wake_shard_scans, plan.shards_scanned as u64);
    TxStats::add(&thread.stats.wake_shard_skips, plan.shards_skipped as u64);
    // Wake-check transactions run on the committer's thread but are not
    // part of the workload operation that committed: suspend any declared
    // operation class so each operation records exactly one latency entry.
    let op_class = thread.op_class();
    thread.clear_op_class();
    for waiter in plan.waiters {
        if !waiter.is_asleep() {
            continue;
        }
        TxStats::bump(&thread.stats.wake_checks);
        let should_wake = rt.exec_bool(thread, &mut |tx| waiter.condition.should_wake(tx));
        if should_wake && waiter.claim_wake() {
            waiter.sem.post();
            TxStats::bump(&thread.stats.wakeups);
        }
    }
    if let Some(class) = op_class {
        thread.set_op_class(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    use crate::addr::Addr;
    use crate::config::TmConfig;
    use crate::ctl::{TxResult, WaitCondition};
    use crate::system::TmSystem;
    use crate::tx::{Tx, TxCommon, TxMode};

    /// A toy runtime whose "transactions" are direct heap accesses; adequate
    /// for exercising the deschedule/wake protocol in isolation.
    struct ToyRuntime {
        system: Arc<TmSystem>,
        exec_count: AtomicU64,
    }

    struct ToyTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for ToyTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> crate::ctl::TxCtl {
            crate::ctl::TxCtl::Abort(crate::ctl::AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    impl TmRuntime for ToyRuntime {
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
        fn name(&self) -> &'static str {
            "toy"
        }
        fn exec_u64(
            &self,
            thread: &Arc<ThreadCtx>,
            body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
        ) -> u64 {
            self.exec_count.fetch_add(1, Ordering::Relaxed);
            let mut tx = ToyTx {
                common: TxCommon::new(Arc::clone(thread), TxMode::Software, 0),
                system: Arc::clone(&self.system),
            };
            body(&mut tx).expect("toy runtime cannot abort")
        }
    }

    fn toy() -> (Arc<TmSystem>, ToyRuntime) {
        let system = TmSystem::new(TmConfig::small());
        let rt = ToyRuntime {
            system: Arc::clone(&system),
            exec_count: AtomicU64::new(0),
        };
        (system, rt)
    }

    /// Registers a values-changed waiter under its condition's stripes, the
    /// way `deschedule` does.
    fn register_manually(system: &Arc<TmSystem>, w: &Arc<Waiter>) -> Vec<usize> {
        let stripes = w.condition.stripes(&system.orecs);
        system.waiters.register(Arc::clone(w), &stripes);
        stripes
    }

    #[test]
    fn double_check_skips_sleep_when_condition_holds() {
        let (system, rt) = toy();
        let th = system.register_thread();
        // Memory already differs from the recorded value -> no sleep.
        system.heap.store(Addr(10), 5);
        let outcome = deschedule(&rt, &th, WaitCondition::ValuesChanged(vec![(Addr(10), 4)]));
        assert_eq!(outcome, DescheduleOutcome::SkippedSleep);
        assert!(system.waiters.is_empty(), "waiter must deregister itself");
        assert_eq!(th.stats.snapshot().desched_skips, 1);
        assert_eq!(th.stats.snapshot().sleeps, 0);
    }

    #[test]
    fn writer_wakes_sleeping_thread() {
        let (system, rt) = toy();
        let waiter_thread = system.register_thread();
        let writer_thread = system.register_thread();
        system.heap.store(Addr(20), 0);

        let system2 = Arc::clone(&system);
        let rt = Arc::new(rt);
        let rt2 = Arc::clone(&rt);
        let wt = Arc::clone(&waiter_thread);
        let sleeper = std::thread::spawn(move || {
            deschedule(
                rt2.as_ref(),
                &wt,
                WaitCondition::ValuesChanged(vec![(Addr(20), 0)]),
            )
        });

        // Wait until the sleeper is registered and actually asleep.
        while system2.waiters.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));

        // "Commit" a write that changes the value, then run wakeWaiters.
        system.heap.store(Addr(20), 7);
        wake_waiters(rt.as_ref(), &writer_thread);

        assert_eq!(
            sleeper.join().unwrap(),
            DescheduleOutcome::Slept(WakeReason::Woken)
        );
        assert_eq!(writer_thread.stats.snapshot().wakeups, 1);
        assert!(system.waiters.is_empty());
    }

    #[test]
    fn targeted_wake_reaches_sleeper_through_its_stripe() {
        let (system, rt) = toy();
        let waiter_thread = system.register_thread();
        let writer_thread = system.register_thread();
        system.heap.store(Addr(21), 0);

        let system2 = Arc::clone(&system);
        let rt = Arc::new(rt);
        let rt2 = Arc::clone(&rt);
        let wt = Arc::clone(&waiter_thread);
        let sleeper = std::thread::spawn(move || {
            deschedule(
                rt2.as_ref(),
                &wt,
                WaitCondition::ValuesChanged(vec![(Addr(21), 0)]),
            )
        });
        while system2.waiters.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));

        system.heap.store(Addr(21), 7);
        let stripe = system.orecs.index_for(Addr(21));
        wake_waiters_matching(rt.as_ref(), &writer_thread, &WakeSet::Stripes(vec![stripe]));

        assert_eq!(
            sleeper.join().unwrap(),
            DescheduleOutcome::Slept(WakeReason::Woken)
        );
        let stats = writer_thread.stats.snapshot();
        assert_eq!(stats.wakeups, 1);
        assert_eq!(stats.wake_targeted, 1);
        assert!(stats.wake_shard_scans >= 1);
        assert!(system.waiters.is_empty());
    }

    #[test]
    fn targeted_wake_skips_unrelated_stripes() {
        let (system, rt) = toy();
        let writer = system.register_thread();
        system.heap.store(Addr(30), 0);
        let sem = Arc::new(Semaphore::new());
        let w = Waiter::new(
            99,
            WaitCondition::ValuesChanged(vec![(Addr(30), 0)]),
            Arc::clone(&sem),
        );
        let stripes = register_manually(&system, &w);

        // Pick a stripe that maps to a different shard than the waiter's.
        let waiter_shard = system.waiters.shard_of(stripes[0]);
        let other_stripe = (0..system.orecs.len())
            .find(|&s| system.waiters.shard_of(s) != waiter_shard)
            .expect("more than one shard");

        // The value HAS changed, but the writer only wrote an unrelated
        // stripe, so the targeted scan must not even evaluate the waiter.
        system.heap.store(Addr(30), 1);
        wake_waiters_matching(&rt, &writer, &WakeSet::Stripes(vec![other_stripe]));
        assert!(w.is_asleep(), "unrelated commit must not wake the sleeper");
        assert_eq!(writer.stats.snapshot().wake_checks, 0);
        assert!(writer.stats.snapshot().wake_shard_skips >= 1);

        // A commit touching the right stripe wakes it.
        wake_waiters_matching(&rt, &writer, &WakeSet::Stripes(stripes.clone()));
        assert!(!w.is_asleep());
        assert_eq!(sem.permits(), 1);
        system.waiters.deregister(&w, &stripes);
    }

    #[test]
    fn silent_store_does_not_wake() {
        let (system, rt) = toy();
        let writer_thread = system.register_thread();
        system.heap.store(Addr(30), 9);
        // Register a waiter manually (not sleeping on a real thread).
        let sem = Arc::new(Semaphore::new());
        let w = Waiter::new(
            99,
            WaitCondition::ValuesChanged(vec![(Addr(30), 9)]),
            Arc::clone(&sem),
        );
        let stripes = register_manually(&system, &w);

        // A "silent store" writes the same value; the waiter must not wake.
        system.heap.store(Addr(30), 9);
        wake_waiters(&rt, &writer_thread);
        assert!(w.is_asleep());
        assert_eq!(sem.permits(), 0);

        // A real change wakes it.
        system.heap.store(Addr(30), 10);
        wake_waiters(&rt, &writer_thread);
        assert!(!w.is_asleep());
        assert_eq!(sem.permits(), 1);
        system.waiters.deregister(&w, &stripes);
    }

    #[test]
    fn waiter_is_signalled_at_most_once() {
        let (system, rt) = toy();
        let writer = system.register_thread();
        system.heap.store(Addr(40), 1);
        let sem = Arc::new(Semaphore::new());
        let w = Waiter::new(
            7,
            WaitCondition::ValuesChanged(vec![(Addr(40), 0)]),
            Arc::clone(&sem),
        );
        register_manually(&system, &w);
        wake_waiters(&rt, &writer);
        wake_waiters(&rt, &writer);
        wake_waiters(&rt, &writer);
        assert_eq!(sem.permits(), 1, "exactly one signal per sleep");
    }

    #[test]
    fn predicate_conditions_are_evaluated_transactionally() {
        let (system, rt) = toy();
        let writer = system.register_thread();
        fn above_threshold(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(Addr(args[0] as usize))? > args[1])
        }
        system.heap.store(Addr(50), 3);
        let sem = Arc::new(Semaphore::new());
        let w = Waiter::new(
            1,
            WaitCondition::Pred {
                f: above_threshold,
                args: vec![50, 10],
            },
            Arc::clone(&sem),
        );
        register_manually(&system, &w);

        // Value changes but predicate still false: no wake (this is the
        // false-wake-up immunity WaitPred buys over Retry).
        system.heap.store(Addr(50), 8);
        wake_waiters(&rt, &writer);
        assert!(w.is_asleep());

        // Predicate waiters live in the unindexed shard, so even a targeted
        // commit that wrote "elsewhere" must evaluate them.
        system.heap.store(Addr(50), 11);
        wake_waiters_matching(&rt, &writer, &WakeSet::Stripes(vec![0]));
        assert!(!w.is_asleep());
    }

    #[test]
    fn timed_deschedule_times_out_without_writer() {
        let (system, rt) = toy();
        let th = system.register_thread();
        system.heap.store(Addr(60), 0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(25);
        let outcome = deschedule_until(
            &rt,
            &th,
            WaitCondition::ValuesChanged(vec![(Addr(60), 0)]),
            Some(deadline),
        );
        assert_eq!(outcome, DescheduleOutcome::Slept(WakeReason::Timeout));
        assert!(system.waiters.is_empty(), "timed-out waiter deregisters");
        assert!(system.timers.idle(), "timed-out waiter disarms");
        let stats = th.stats.snapshot();
        assert_eq!(stats.wake_timeouts, 1);
        assert_eq!(stats.sleeps, 1);
    }

    #[test]
    fn already_expired_deadline_resolves_without_arming() {
        let (system, rt) = toy();
        let th = system.register_thread();
        system.heap.store(Addr(61), 0);
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let outcome = deschedule_until(
            &rt,
            &th,
            WaitCondition::ValuesChanged(vec![(Addr(61), 0)]),
            Some(past),
        );
        assert_eq!(outcome, DescheduleOutcome::Slept(WakeReason::Timeout));
        assert!(system.timers.idle());
        assert_eq!(th.stats.snapshot().wake_timeouts, 1);
    }

    #[test]
    fn timed_deschedule_skips_sleep_when_condition_holds() {
        let (system, rt) = toy();
        let th = system.register_thread();
        system.heap.store(Addr(62), 5);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let outcome = deschedule_until(
            &rt,
            &th,
            WaitCondition::ValuesChanged(vec![(Addr(62), 4)]),
            Some(deadline),
        );
        assert_eq!(outcome, DescheduleOutcome::SkippedSleep);
        assert_eq!(outcome.reason(), WakeReason::Woken);
        assert!(system.timers.idle(), "skipped sleep must disarm its timer");
        assert_eq!(th.stats.snapshot().wake_timeouts, 0);
    }

    #[test]
    fn wake_beats_deadline() {
        let (system, rt) = toy();
        let waiter_thread = system.register_thread();
        let writer_thread = system.register_thread();
        system.heap.store(Addr(63), 0);

        let system2 = Arc::clone(&system);
        let rt = Arc::new(rt);
        let rt2 = Arc::clone(&rt);
        let wt = Arc::clone(&waiter_thread);
        let sleeper = std::thread::spawn(move || {
            deschedule_until(
                rt2.as_ref(),
                &wt,
                WaitCondition::ValuesChanged(vec![(Addr(63), 0)]),
                Some(std::time::Instant::now() + std::time::Duration::from_secs(30)),
            )
        });
        while system2.waiters.is_empty() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));

        system.heap.store(Addr(63), 7);
        wake_waiters(rt.as_ref(), &writer_thread);

        assert_eq!(
            sleeper.join().unwrap(),
            DescheduleOutcome::Slept(WakeReason::Woken)
        );
        let stats = waiter_thread.stats.snapshot();
        assert_eq!(stats.wake_timeouts, 0, "the wake won the race");
        assert!(system.timers.idle(), "woken sleeper disarms its timer");
    }

    #[test]
    fn cancelled_sleeper_reports_cancellation() {
        let (system, rt) = toy();
        let waiter_thread = system.register_thread();
        system.heap.store(Addr(64), 0);

        let system2 = Arc::clone(&system);
        let rt = Arc::new(rt);
        let rt2 = Arc::clone(&rt);
        let wt = Arc::clone(&waiter_thread);
        let tid = waiter_thread.id;
        let sleeper = std::thread::spawn(move || {
            deschedule_until(
                rt2.as_ref(),
                &wt,
                WaitCondition::ValuesChanged(vec![(Addr(64), 0)]),
                Some(std::time::Instant::now() + std::time::Duration::from_secs(30)),
            )
        });
        while system2.waiters.find_by_thread(tid).is_none() {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));

        let w = system.waiters.find_by_thread(tid).expect("sleeper found");
        assert!(w.claim(WakeReason::Cancelled));
        w.sem.post();

        assert_eq!(
            sleeper.join().unwrap(),
            DescheduleOutcome::Slept(WakeReason::Cancelled)
        );
        assert_eq!(waiter_thread.stats.snapshot().wake_cancels, 1);
        assert!(system.waiters.is_empty());
        assert!(system.timers.idle());
    }

    #[test]
    fn committing_writers_drive_the_timer_wheel() {
        let (system, rt) = toy();
        let writer_thread = system.register_thread();
        system.heap.store(Addr(65), 0);

        // A parked timed waiter whose condition never becomes true: only the
        // timer wheel can end this wait.  Registered manually so no sleeper
        // thread races the writer's poll with its own semaphore backstop.
        let sem = Arc::new(Semaphore::new());
        let w = Waiter::with_deadline(
            99,
            WaitCondition::ValuesChanged(vec![(Addr(65), 0)]),
            Arc::clone(&sem),
            Some(std::time::Instant::now() + std::time::Duration::from_millis(10)),
        );
        let stripes = register_manually(&system, &w);
        system.timers.arm(&w);

        // Before the deadline a writer scan leaves the waiter alone (the
        // value is unchanged, so no condition-based wake either).
        wake_waiters(&rt, &writer_thread);
        assert!(w.is_asleep());

        std::thread::sleep(std::time::Duration::from_millis(15));
        wake_waiters(&rt, &writer_thread);
        assert_eq!(w.wake_reason(), Some(WakeReason::Timeout));
        assert_eq!(sem.permits(), 1, "expired waiter signalled exactly once");
        assert!(writer_thread.stats.snapshot().timer_ticks > 0);
        system.waiters.deregister(&w, &stripes);
        assert!(system.timers.idle(), "the poll consumed the wheel entry");
    }

    #[test]
    fn wake_waiters_with_empty_registry_runs_no_transactions() {
        let (system, rt) = toy();
        let writer = system.register_thread();
        wake_waiters(&rt, &writer);
        wake_waiters_matching(&rt, &writer, &WakeSet::Stripes(vec![1, 2, 3]));
        assert_eq!(rt.exec_count.load(Ordering::Relaxed), 0);
        let stats = writer.stats.snapshot();
        assert_eq!(stats.wake_checks, 0);
        assert_eq!(stats.wake_shard_scans, 0);
        assert_eq!(
            stats.wake_targeted, 0,
            "the fast path returns before any accounting"
        );
        let _ = system;
    }
}
