//! Shared substrate for the transactional-memory condition-synchronization
//! reproduction.
//!
//! This crate contains everything the three transaction runtimes
//! ([`stm-eager`], [`stm-lazy`], [`htm-sim`]) and the condition-synchronization
//! layer ([`condsync`]) have in common:
//!
//! * the unified transaction driver ([`driver`]): the single loop that runs
//!   every runtime's transactions ([`driver::run`]) against the narrow
//!   [`driver::TxEngine`] interface, including the `Deschedule` parking /
//!   `wakeWaiters` protocol ([`driver::deschedule`],
//!   [`driver::wake_waiters`]),
//! * a word-addressable transactional heap ([`heap::TmHeap`]) with a simple
//!   allocator, standing in for the raw C memory the paper instruments,
//! * a table of ownership records ([`orec::OrecTable`]) hashed from addresses,
//!   exactly as in the paper's Appendix A (entries cache-line padded),
//! * the version clock plane ([`clock::ClockPlane`]): the GV1 shared counter
//!   and the decentralized lazy-GV5 scheme over the per-thread epoch table
//!   ([`epoch::EpochTable`]), plus the cache-line padding primitive both are
//!   built from ([`pad::CachePadded`]),
//! * the object-safe transaction handle trait ([`tx::Tx`]) plus the common
//!   per-transaction metadata ([`tx::TxCommon`]) used by `Retry`'s value
//!   logging,
//! * the shared access-set layer ([`access`]): hash-indexed read sets,
//!   write logs and index sets with a per-thread recycling pool, backing
//!   every runtime's transaction logs,
//! * the mode-control plane: the system-wide serial/irrevocable gate and
//!   shared serial attempt ([`serial`]) plus the pluggable contention-
//!   management policies that drive backoff and mode escalation ([`policy`]),
//! * the pluggable hardware plane ([`hwtm`]): the [`hwtm::HwTm`] trait the
//!   HTM and hybrid runtimes drive their hardware backend through, and the
//!   deterministic [`hwtm::FaultPlane`] fault-injection decorator,
//! * control-flow types for aborts and descheduling ([`ctl`]),
//! * the thread registry, statistics and quiescence support ([`thread`],
//!   [`stats`]),
//! * the sharded, address-indexed waiter registry and semaphore used by the
//!   `Deschedule` mechanism ([`waitlist`], [`sem`]), plus the lazily driven
//!   timer wheel behind its timed (`deschedule_until`) variant ([`timer`]),
//! * typed views over heap words ([`vars::TmVar`], [`vars::TmArray`]).
//!
//! The paper's algorithms are implemented on top of these pieces; see the
//! `condsync` crate for the contribution (Deschedule / Retry / Await /
//! WaitPred) and the runtime crates for Appendix A and the TL2/TSX analogues.
//!
//! [`stm-eager`]: ../stm_eager/index.html
//! [`stm-lazy`]: ../stm_lazy/index.html
//! [`htm-sim`]: ../htm_sim/index.html
//! [`condsync`]: ../condsync/index.html

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod addr;
pub mod backoff;
pub mod clock;
pub mod config;
pub mod ctl;
pub mod driver;
pub mod epoch;
pub mod heap;
pub mod hwtm;
pub mod lock;
pub mod orec;
pub mod pad;
pub mod policy;
pub mod runtime;
pub mod sem;
pub mod serial;
pub mod stats;
pub mod system;
pub mod thread;
pub mod timer;
pub mod tx;
pub mod vars;
pub mod waitlist;

pub use access::{IndexSet, LogPool, ReadEntry, ReadSet, WriteEntry, WriteLog};
pub use addr::{Addr, LineId, LINE_WORDS};
pub use clock::{ClockMode, ClockPlane, CommitStamp, GlobalClock};
pub use config::{
    default_orec_shards, BackoffConfig, FaultConfig, HtmConfig, SnapshotMode, TimerConfig, TmConfig,
};
pub use ctl::{AbortReason, PredFn, TxCtl, TxResult, WaitCondition, WaitSpec};
pub use driver::{CommitOutcome, TxEngine};
pub use epoch::{EpochSlot, EpochTable};
pub use heap::TmHeap;
pub use hwtm::{FaultPlane, HwAbort, HwAbortKind, HwTm};
pub use orec::{OrecTable, OrecValue};
pub use pad::{CachePadded, CACHE_LINE_BYTES};
pub use policy::{CmAction, CmEvent, CmHistory, ContentionManager, PolicyKind};
pub use runtime::{TmRt, TmRuntime};
pub use sem::Semaphore;
pub use serial::{subscribe_begin, SerialAttempt, SerialGate};
pub use stats::{LatencyHistogram, LatencySnapshot, OpClass, StatsSnapshot, TxStats};
pub use system::TmSystem;
pub use thread::{ThreadCtx, ThreadId, ThreadRegistry};
pub use timer::{TimerPoll, TimerWheel};
pub use tx::{Tx, TxCommon, TxKind, TxMode};
pub use vars::{TmArray, TmValue, TmVar};
pub use waitlist::{ScanPlan, WaitList, Waiter, WakeReason, WakeSet};
