//! The pluggable hardware plane: the [`HwTm`] trait every hardware-TM
//! backend implements, plus the deterministic [`FaultPlane`] fault-injection
//! layer that wraps any backend.
//!
//! The paper's hybrid designs assume a best-effort hardware TM whose aborts
//! (conflict, capacity, spurious) the software rungs must absorb.  Rather
//! than hard-wiring the `htm-sim` simulator as *the* hardware path, the
//! runtimes talk to the hardware through this trait:
//!
//! * the **HTM runtime** (`htm_sim::HtmSim`) drives its speculative attempts
//!   through a plane — by default the simulator's line-table backend, but any
//!   [`HwTm`] can be installed ([`htm_sim::HtmSim::with_plane`]);
//! * the **hybrid runtime** (`tm_hybrid::HybridTm`) routes its software
//!   write-back interlock through the same plane, so software commits doom
//!   overlapping speculative transactions whatever the backend is;
//! * the [`FaultPlane`] is a decorator backend: it delegates to an inner
//!   plane and injects deterministic, seeded aborts — conflicts on chosen
//!   lines or at a chosen rate, capacity aborts at a chosen footprint,
//!   spurious aborts, and aborts *inside the commit window* — so the
//!   Hw→Sw→Serial mode ladder, the serial-gate drain and the orec-coupled
//!   write-back interlock are drivable on demand instead of by luck.
//!
//! A real Intel RTM / Arm TME backend slots in behind the same trait; see the
//! cfg-gated `htm_sim::rtm` stub module for where.
//!
//! [`htm_sim::HtmSim`]: ../../htm_sim/struct.HtmSim.html
//! [`htm_sim::HtmSim::with_plane`]: ../../htm_sim/struct.HtmSim.html#method.with_plane
//! [`tm_hybrid::HybridTm`]: ../../tm_hybrid/struct.HybridTm.html

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::LineId;
use crate::config::FaultConfig;
use crate::ctl::AbortReason;
use crate::pad::CachePadded;
use crate::thread::ThreadId;

/// Classification of a hardware abort, as reported by a [`HwTm`] backend.
///
/// This is the architectural taxonomy (what Intel's `RTM` status word or Arm
/// TME's failure register encode); [`HwAbortKind::reason`] maps it onto the
/// runtime-level [`AbortReason`] the driver and contention policies consume.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HwAbortKind {
    /// A conflicting access from another processor invalidated a
    /// speculatively read or written line.
    Conflict,
    /// The transaction's read or write footprint overflowed the speculative
    /// capacity.
    Capacity,
    /// An environmental abort with no data cause (interrupt, TLB shootdown,
    /// unfriendly instruction) — retrying immediately may well succeed, so it
    /// is not classified as contention.
    Spurious,
}

impl HwAbortKind {
    /// The runtime-level abort reason this hardware abort maps to.
    pub fn reason(self) -> AbortReason {
        match self {
            HwAbortKind::Conflict => AbortReason::HwConflict,
            HwAbortKind::Capacity => AbortReason::HwCapacity,
            HwAbortKind::Spurious => AbortReason::HwSpurious,
        }
    }

    /// A short label for reports and tracing.
    pub fn label(self) -> &'static str {
        match self {
            HwAbortKind::Conflict => "conflict",
            HwAbortKind::Capacity => "capacity",
            HwAbortKind::Spurious => "spurious",
        }
    }
}

/// A hardware abort: its architectural classification plus whether a
/// [`FaultPlane`] injected it (so the runtime can count injected faults
/// separately in `TxStats::hw_faults_injected`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HwAbort {
    /// What kind of abort the backend reported.
    pub kind: HwAbortKind,
    /// True when a fault-injection layer manufactured this abort.
    pub injected: bool,
}

impl HwAbort {
    /// A genuine (non-injected) abort of the given kind.
    pub fn real(kind: HwAbortKind) -> Self {
        HwAbort {
            kind,
            injected: false,
        }
    }

    /// An abort manufactured by a fault-injection layer.
    pub fn injected(kind: HwAbortKind) -> Self {
        HwAbort {
            kind,
            injected: true,
        }
    }
}

/// The contract a hardware-TM backend provides to the runtimes.
///
/// The trait covers the whole speculative life cycle at cache-line
/// granularity — begin, read/write registration, footprint (capacity)
/// policing, the commit-window check, cleanup — plus the two couplings the
/// hybrid runtime needs: the non-speculative write-back claim a software
/// commit uses to doom overlapping speculation, and line-cover reporting
/// (committed line → ownership-record stripes) for orec coupling and
/// targeted wake scans.
///
/// Conflicting *other* transactions are doomed inside the backend (the
/// simulator delivers dooms through the thread registry); the caller only
/// learns whether *its own* attempt must abort, and why, via [`HwAbort`].
/// All methods take `&self` so a backend can be shared as `Arc<dyn HwTm>`.
pub trait HwTm: Send + Sync + fmt::Debug {
    /// Called when a speculative attempt begins (fault planes may reseed or
    /// count here).  Default: nothing.
    fn begin_attempt(&self, tid: ThreadId) {
        let _ = tid;
    }

    /// Maps a cache line to the backend's tracking token (the simulator's
    /// directory slot).  Callers pass the token back to the registration,
    /// clear and claim methods.
    fn slot_for(&self, line: LineId) -> usize;

    /// Registers `tid` as a speculative reader of `line` (token `slot`).
    /// `Err` means the attempt must abort; any conflicting speculative
    /// writer has already been doomed and the registration undone.
    fn read_line(&self, line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort>;

    /// Registers `tid` as the speculative writer of `line` (token `slot`).
    /// On success every conflicting speculative reader/writer has been
    /// doomed; `Err` means the attempt must abort.
    fn write_line(&self, line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort>;

    /// Polices the read footprint after it grew to `distinct_lines` distinct
    /// lines; `Err` (normally [`HwAbortKind::Capacity`]) aborts the attempt.
    fn check_read_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort>;

    /// Polices the write footprint after it grew to `distinct_lines`
    /// distinct lines.
    fn check_write_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort>;

    /// The backend's last chance to abort the attempt *inside the commit
    /// window*: called under the commit barrier, after the doom check and
    /// before the write-back becomes unabortable.  Fault planes inject here
    /// to exercise exactly the window where the Algorithm-3 hazards live.
    fn commit_check(&self, tid: ThreadId) -> Result<(), HwAbort>;

    /// Removes `tid`'s reader registration from `slot` (abort or commit).
    fn clear_read(&self, slot: usize, tid: ThreadId);

    /// Removes `tid`'s writer registration from `slot` (abort or commit).
    fn clear_write(&self, slot: usize, tid: ThreadId);

    /// Unconditionally claims `slot` for a *software* commit's write-back
    /// (the hybrid interlock), dooming every speculative occupant.  Never
    /// fails: the software commit has validated and will write the line.
    fn claim_for_writeback(&self, slot: usize, tid: ThreadId);

    /// Releases a [`HwTm::claim_for_writeback`] claim after the write-back.
    fn release_writeback(&self, slot: usize, tid: ThreadId);

    /// Appends the ownership-record stripes covering every word of `line` to
    /// `out` (the caller sorts/dedups).  A hardware commit's effects are
    /// visible only at line granularity; this cover is a superset of the
    /// written words' stripes, so orec coupling and targeted wake scans
    /// built on it can never lose an update or a wakeup.
    fn line_cover(&self, line: LineId, out: &mut Vec<usize>);
}

/// `splitmix64` — seeds the per-thread xorshift streams so nearby seeds and
/// thread ids still produce uncorrelated streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic fault-injection layer: an [`HwTm`] decorator that
/// delegates to an inner backend and manufactures aborts according to a
/// seeded [`FaultConfig`].
///
/// Determinism: each thread draws from its own `xorshift64*` stream, seeded
/// from `(seed, thread id)`, so a single thread's fault sequence is exactly
/// reproducible from the seed regardless of scheduling.  (Cross-thread
/// interleaving still varies — the *faults* are deterministic, the races
/// they provoke are the point.)
///
/// Injection points and the [`FaultConfig`] knobs that drive them:
///
/// * [`HwTm::read_line`] / [`HwTm::write_line`] — conflict aborts on chosen
///   lines (`conflict_line_mod`) or at a seeded rate (`conflict_per_64k`),
///   and spurious aborts at a seeded rate (`spurious_per_64k`).  Injection
///   is decided *before* delegating, so no registration is left behind.
/// * [`HwTm::check_read_footprint`] / [`HwTm::check_write_footprint`] —
///   capacity aborts at a chosen footprint (`capacity_read_lines` /
///   `capacity_write_lines`), tighter than the real capacity.
/// * [`HwTm::commit_check`] — conflict aborts *inside the commit window*
///   (`commit_window_per_64k`): past the doom check, before the write-back.
///
/// The write-back claim ([`HwTm::claim_for_writeback`]) is never injected:
/// a validated software commit must not fail.
pub struct FaultPlane {
    inner: Arc<dyn HwTm>,
    cfg: FaultConfig,
    /// Per-thread xorshift64* states (padded: each thread owns its slot).
    rng: Box<[CachePadded<AtomicU64>]>,
    /// Total faults this plane manufactured (all threads, all kinds).
    injected: CachePadded<AtomicU64>,
}

impl fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlane")
            .field("cfg", &self.cfg)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultPlane {
    /// Wraps `inner` with the given configuration; `max_threads` bounds the
    /// thread ids that will ever be seen (one rng stream each).
    pub fn new(inner: Arc<dyn HwTm>, cfg: FaultConfig, max_threads: usize) -> Self {
        let rng = (0..max_threads.max(1))
            .map(|tid| {
                CachePadded::new(AtomicU64::new(
                    // Never zero: xorshift's absorbing state.
                    splitmix64(cfg.seed ^ (tid as u64).wrapping_mul(0xA24B_AED4_963E_E407)) | 1,
                ))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FaultPlane {
            inner,
            cfg,
            rng,
            injected: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn HwTm> {
        &self.inner
    }

    /// Total faults manufactured so far (all threads, all kinds).
    pub fn injected_total(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Advances `tid`'s xorshift64* stream and returns the next value.
    fn next_rand(&self, tid: ThreadId) -> u64 {
        let slot = &self.rng[tid % self.rng.len()];
        let mut x = slot.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        slot.store(x, Ordering::Relaxed);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// One Bernoulli draw with probability `rate / 65536`.
    fn hit(&self, tid: ThreadId, rate: u16) -> bool {
        rate != 0 && (self.next_rand(tid) & 0xFFFF) < rate as u64
    }

    /// Records and returns one manufactured abort.
    fn inject(&self, kind: HwAbortKind) -> HwAbort {
        self.injected.fetch_add(1, Ordering::Relaxed);
        HwAbort::injected(kind)
    }

    /// The access-time injection decision shared by reads and writes.
    fn access_fault(&self, line: LineId, tid: ThreadId) -> Option<HwAbort> {
        let m = self.cfg.conflict_line_mod;
        if m != 0 && (line.0 as u64).is_multiple_of(m) {
            return Some(self.inject(HwAbortKind::Conflict));
        }
        if self.hit(tid, self.cfg.conflict_per_64k) {
            return Some(self.inject(HwAbortKind::Conflict));
        }
        if self.hit(tid, self.cfg.spurious_per_64k) {
            return Some(self.inject(HwAbortKind::Spurious));
        }
        None
    }
}

impl HwTm for FaultPlane {
    fn begin_attempt(&self, tid: ThreadId) {
        self.inner.begin_attempt(tid);
    }

    fn slot_for(&self, line: LineId) -> usize {
        self.inner.slot_for(line)
    }

    fn read_line(&self, line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort> {
        if let Some(fault) = self.access_fault(line, tid) {
            return Err(fault);
        }
        self.inner.read_line(line, slot, tid)
    }

    fn write_line(&self, line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort> {
        if let Some(fault) = self.access_fault(line, tid) {
            return Err(fault);
        }
        self.inner.write_line(line, slot, tid)
    }

    fn check_read_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort> {
        let cap = self.cfg.capacity_read_lines;
        if cap != 0 && distinct_lines > cap {
            return Err(self.inject(HwAbortKind::Capacity));
        }
        self.inner.check_read_footprint(distinct_lines)
    }

    fn check_write_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort> {
        let cap = self.cfg.capacity_write_lines;
        if cap != 0 && distinct_lines > cap {
            return Err(self.inject(HwAbortKind::Capacity));
        }
        self.inner.check_write_footprint(distinct_lines)
    }

    fn commit_check(&self, tid: ThreadId) -> Result<(), HwAbort> {
        if self.hit(tid, self.cfg.commit_window_per_64k) {
            return Err(self.inject(HwAbortKind::Conflict));
        }
        self.inner.commit_check(tid)
    }

    fn clear_read(&self, slot: usize, tid: ThreadId) {
        self.inner.clear_read(slot, tid);
    }

    fn clear_write(&self, slot: usize, tid: ThreadId) {
        self.inner.clear_write(slot, tid);
    }

    fn claim_for_writeback(&self, slot: usize, tid: ThreadId) {
        self.inner.claim_for_writeback(slot, tid);
    }

    fn release_writeback(&self, slot: usize, tid: ThreadId) {
        self.inner.release_writeback(slot, tid);
    }

    fn line_cover(&self, line: LineId, out: &mut Vec<usize>) {
        self.inner.line_cover(line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A permissive backend: every operation succeeds, nothing is tracked.
    #[derive(Debug, Default)]
    struct NullHw;

    impl HwTm for NullHw {
        fn slot_for(&self, line: LineId) -> usize {
            line.0
        }
        fn read_line(&self, _: LineId, _: usize, _: ThreadId) -> Result<(), HwAbort> {
            Ok(())
        }
        fn write_line(&self, _: LineId, _: usize, _: ThreadId) -> Result<(), HwAbort> {
            Ok(())
        }
        fn check_read_footprint(&self, _: usize) -> Result<(), HwAbort> {
            Ok(())
        }
        fn check_write_footprint(&self, _: usize) -> Result<(), HwAbort> {
            Ok(())
        }
        fn commit_check(&self, _: ThreadId) -> Result<(), HwAbort> {
            Ok(())
        }
        fn clear_read(&self, _: usize, _: ThreadId) {}
        fn clear_write(&self, _: usize, _: ThreadId) {}
        fn claim_for_writeback(&self, _: usize, _: ThreadId) {}
        fn release_writeback(&self, _: usize, _: ThreadId) {}
        fn line_cover(&self, _: LineId, _: &mut Vec<usize>) {}
    }

    fn plane(cfg: FaultConfig) -> FaultPlane {
        FaultPlane::new(Arc::new(NullHw), cfg, 4)
    }

    #[test]
    fn abort_kinds_map_to_reasons() {
        assert_eq!(HwAbortKind::Conflict.reason(), AbortReason::HwConflict);
        assert_eq!(HwAbortKind::Capacity.reason(), AbortReason::HwCapacity);
        assert_eq!(HwAbortKind::Spurious.reason(), AbortReason::HwSpurious);
        assert_eq!(HwAbortKind::Spurious.label(), "spurious");
        assert!(HwAbort::injected(HwAbortKind::Conflict).injected);
        assert!(!HwAbort::real(HwAbortKind::Conflict).injected);
    }

    #[test]
    fn zero_config_injects_nothing() {
        let p = plane(FaultConfig::default());
        for i in 0..1000 {
            assert!(p.read_line(LineId(i), i, 0).is_ok());
            assert!(p.write_line(LineId(i), i, 1).is_ok());
            assert!(p.commit_check(0).is_ok());
        }
        assert!(p.check_read_footprint(usize::MAX).is_ok());
        assert_eq!(p.injected_total(), 0);
    }

    #[test]
    fn chosen_lines_always_conflict() {
        let p = plane(FaultConfig {
            conflict_line_mod: 4,
            ..FaultConfig::default()
        });
        let fault = p.read_line(LineId(8), 0, 0).unwrap_err();
        assert_eq!(fault.kind, HwAbortKind::Conflict);
        assert!(fault.injected);
        assert!(p.read_line(LineId(7), 0, 0).is_ok());
        assert!(p.write_line(LineId(12), 0, 0).is_err());
        assert!(p.write_line(LineId(13), 0, 0).is_ok());
    }

    #[test]
    fn capacity_faults_at_the_chosen_footprint() {
        let p = plane(FaultConfig {
            capacity_read_lines: 3,
            capacity_write_lines: 2,
            ..FaultConfig::default()
        });
        assert!(p.check_read_footprint(3).is_ok());
        let fault = p.check_read_footprint(4).unwrap_err();
        assert_eq!(fault.kind, HwAbortKind::Capacity);
        assert!(fault.injected);
        assert!(p.check_write_footprint(2).is_ok());
        assert!(p.check_write_footprint(3).is_err());
    }

    #[test]
    fn rates_are_seeded_and_deterministic_per_thread() {
        let cfg = FaultConfig {
            seed: 42,
            spurious_per_64k: 16384, // 25%
            ..FaultConfig::default()
        };
        let run = || {
            let p = plane(cfg);
            (0..256)
                .map(|i| p.read_line(LineId(i), i, 1).is_err())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same thread, same fault sequence");
        let faults = a.iter().filter(|&&f| f).count();
        assert!(
            (16..112).contains(&faults),
            "a 25% rate should fault roughly a quarter of 256 accesses, got {faults}"
        );

        let other_seed = FaultConfig { seed: 43, ..cfg };
        let c = {
            let p = plane(other_seed);
            (0..256)
                .map(|i| p.read_line(LineId(i), i, 1).is_err())
                .collect::<Vec<_>>()
        };
        assert_ne!(a, c, "different seeds draw different streams");
    }

    #[test]
    fn commit_window_faults_inject_conflicts() {
        let p = plane(FaultConfig {
            commit_window_per_64k: u16::MAX, // ~always
            ..FaultConfig::default()
        });
        let fault = p.commit_check(0).unwrap_err();
        assert_eq!(fault.kind, HwAbortKind::Conflict);
        assert!(fault.injected);
        assert!(p.injected_total() >= 1);
    }

    #[test]
    fn injection_counts_accumulate() {
        let p = plane(FaultConfig {
            conflict_line_mod: 1,
            ..FaultConfig::default()
        });
        for i in 0..10 {
            assert!(p.read_line(LineId(i), i, 0).is_err());
        }
        assert_eq!(p.injected_total(), 10);
    }
}
