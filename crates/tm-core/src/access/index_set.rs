//! Insertion-ordered sets of small indices (lock sets, line-slot sets).

use super::index::PosMap;

/// A deduplicating set of `usize` indices that remembers insertion order.
///
/// Used for the eager STM's lock set (orec indices held by the attempt) and
/// the HTM simulator's speculative read/write line-slot sets, whose
/// per-access `Vec::contains` membership test was O(set size).
#[derive(Debug, Default)]
pub struct IndexSet {
    entries: Vec<usize>,
    index: PosMap,
}

impl IndexSet {
    /// An empty set (no allocation until the first insert).
    pub fn new() -> Self {
        IndexSet::default()
    }

    /// Number of distinct indices held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `idx`; returns `true` if it was not already present.
    pub fn insert(&mut self, idx: usize) -> bool {
        let entries = &self.entries;
        if self
            .index
            .insert_or_find(entries.len(), idx as u64, |pos| {
                entries[pos as usize] as u64
            })
            .is_some()
        {
            return false;
        }
        self.entries.push(idx);
        true
    }

    /// True if `idx` is in the set — O(1).
    pub fn contains(&self, idx: usize) -> bool {
        let entries = &self.entries;
        self.index
            .lookup(idx as u64, |pos| entries[pos as usize] == idx)
            .is_some()
    }

    /// The indices in insertion order.
    pub fn as_slice(&self) -> &[usize] {
        &self.entries
    }

    /// Iterates the indices in insertion order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = usize> + '_ {
        self.entries.iter().copied()
    }

    /// Moves the indices out as a `Vec` (for [`crate::CommitOutcome`]),
    /// leaving the set empty; the hash index keeps its capacity.
    pub fn take_entries(&mut self) -> Vec<usize> {
        self.index.clear();
        std::mem::take(&mut self.entries)
    }

    /// Allocated capacity (entry vector or hash slab).  The slab counts so
    /// that a set whose entries were moved out by
    /// [`IndexSet::take_entries`] — every committed eager writer's lock set
    /// — is still recycled by the pool instead of dropped.
    pub fn capacity(&self) -> usize {
        self.entries.capacity().max(self.index.capacity())
    }

    /// Empties the set, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates_and_keeps_order() {
        let mut s = IndexSet::new();
        assert!(s.insert(9));
        assert!(s.insert(2));
        assert!(!s.insert(9));
        assert!(s.insert(5));
        assert_eq!(s.as_slice(), &[9, 2, 5]);
        assert!(s.contains(2));
        assert!(!s.contains(3));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn take_entries_leaves_a_reusable_set() {
        let mut s = IndexSet::new();
        s.insert(1);
        s.insert(2);
        assert_eq!(s.take_entries(), vec![1, 2]);
        assert!(s.is_empty());
        assert!(!s.contains(1));
        assert!(s.insert(1), "taken indices can be re-inserted");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = IndexSet::new();
        for i in 0..300 {
            s.insert(i);
        }
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
    }
}
