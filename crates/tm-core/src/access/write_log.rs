//! The hash-indexed write log shared by redo, undo and `Retry` value logs.

use crate::addr::Addr;

use super::index::{Cover, PosMap};

/// One logged write: the address, its value, and a caller-defined cached
/// index.
///
/// The lazy STM's redo log stores the orec stripe here (feeding
/// [`WriteLog::orec_cover`], its commit-time lock-acquisition order).
/// Logs whose cover nobody reads — the eager undo log (its cover is the
/// separate lock set), the HTM buffers and the `Retry` value log — pass a
/// constant index instead, which keeps the cover degenerate (at most one
/// entry) and so costs nothing to maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEntry {
    /// The written address.
    pub addr: Addr,
    /// The logged value: the pending value for a redo log, the displaced
    /// old value for an undo log, the observed value for a value log.
    pub val: u64,
    /// Cached owner-defined index for `addr` (orec stripe where relevant).
    pub stripe: usize,
}

/// A transaction's write log: insertion-ordered entries, an open-addressed
/// hash index giving O(1) per-address lookup, and a cover of the distinct
/// cached stripes, sorted at most once per attempt when first consumed.
///
/// One container serves all three log disciplines:
///
/// * **redo** ([`WriteLog::record`]) — write-after-write overwrites the
///   entry in place, so replaying entries in order applies the final value
///   of every address exactly once;
/// * **undo / value log** ([`WriteLog::record_first`]) — the first logged
///   value per address is kept (the pre-transaction or first-observed
///   value), so replaying in *reverse* restores pre-transaction state.
///
/// The flat-`Vec` predecessors scanned linearly on every read-after-write
/// (`redo_lookup`, `retry_log`), making large transactions quadratic.
///
/// ```
/// use tm_core::access::WriteLog;
/// use tm_core::Addr;
///
/// let mut redo = WriteLog::new();
/// redo.record(Addr(7), 1, || 0);
/// redo.record(Addr(7), 2, || 0); // write-after-write: last value wins
/// assert_eq!(redo.lookup(Addr(7)), Some(2));
/// assert_eq!(redo.len(), 1, "one entry per address");
///
/// let mut undo = WriteLog::new();
/// undo.record_first(Addr(7), 10, || 0);
/// undo.record_first(Addr(7), 99, || 0); // first (pre-tx) value is kept
/// assert_eq!(undo.lookup(Addr(7)), Some(10));
/// ```
#[derive(Debug, Default)]
pub struct WriteLog {
    entries: Vec<WriteEntry>,
    index: PosMap,
    cover: Cover,
}

impl WriteLog {
    /// An empty log (no allocation until the first record).
    pub fn new() -> Self {
        WriteLog::default()
    }

    /// Number of distinct logged addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Position of `addr`'s entry via the shared insert protocol, or `None`
    /// with a slot reserved for the next push.
    #[inline]
    fn find_or_reserve(&mut self, addr: Addr) -> Option<u32> {
        let entries = &self.entries;
        self.index
            .insert_or_find(entries.len(), addr.0 as u64, |pos| {
                entries[pos as usize].addr.0 as u64
            })
    }

    #[inline]
    fn push_new(&mut self, addr: Addr, val: u64, stripe: usize) {
        self.entries.push(WriteEntry { addr, val, stripe });
        self.cover.note(stripe);
    }

    /// Records a write with redo semantics: a write-after-write overwrites
    /// the existing entry's value.  `stripe` is only evaluated for fresh
    /// addresses, so re-writes never re-hash.  Returns `true` if the
    /// address was new.
    #[inline]
    pub fn record(&mut self, addr: Addr, val: u64, stripe: impl FnOnce() -> usize) -> bool {
        match self.find_or_reserve(addr) {
            Some(pos) => {
                self.entries[pos as usize].val = val;
                false
            }
            None => {
                let stripe = stripe();
                self.push_new(addr, val, stripe);
                true
            }
        }
    }

    /// Records a write with undo/value-log semantics: the first logged
    /// value per address is kept, later records are ignored.  Returns
    /// `true` if the address was new.
    #[inline]
    pub fn record_first(&mut self, addr: Addr, val: u64, stripe: impl FnOnce() -> usize) -> bool {
        match self.find_or_reserve(addr) {
            Some(_) => false,
            None => {
                let stripe = stripe();
                self.push_new(addr, val, stripe);
                true
            }
        }
    }

    /// The logged value for `addr`, if present — O(1), replacing the
    /// reverse linear scans of the flat logs.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<u64> {
        self.entry(addr).map(|e| e.val)
    }

    /// The full entry for `addr`, if present.
    #[inline]
    pub fn entry(&self, addr: Addr) -> Option<&WriteEntry> {
        let entries = &self.entries;
        self.index
            .lookup(addr.0 as u64, |pos| entries[pos as usize].addr == addr)
            .map(|pos| &self.entries[pos as usize])
    }

    /// True if `addr` has been logged.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.entry(addr).is_some()
    }

    /// The entries in insertion order (first write per address).  Iterate
    /// forward to replay a redo log, `.rev()` to roll back an undo log.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &WriteEntry> {
        self.entries.iter()
    }

    /// The distinct cached stripes of the logged addresses, sorted
    /// ascending — the commit-time lock-acquisition order for the lazy STM.
    /// Stripes accumulate in O(1) per fresh address; the sort + dedup runs
    /// at most once per attempt, here, instead of re-deriving the cover
    /// from the full address list at every commit.
    pub fn orec_cover(&mut self) -> &[usize] {
        self.cover.as_sorted()
    }

    /// The entries (insertion order) together with the sorted distinct-
    /// stripe cover, from a single borrow: commit paths need to hold both
    /// at once — acquire/release locks over the cover while writing the
    /// entries back — without copying the cover out of the log.
    pub fn entries_with_cover(&mut self) -> (&[WriteEntry], &[usize]) {
        let cover = self.cover.as_sorted();
        (&self.entries, cover)
    }

    /// Drains the log into `(addr, value)` pairs in insertion order,
    /// leaving the log empty but with its capacity intact (the shape
    /// [`crate::ctl::WaitCondition::ValuesChanged`] wants from the `Retry`
    /// value log).
    pub fn drain_pairs(&mut self) -> Vec<(Addr, u64)> {
        let pairs = self.entries.iter().map(|e| (e.addr, e.val)).collect();
        self.clear();
        pairs
    }

    /// `(addr, value)` pairs in insertion order without consuming the log.
    pub fn pairs(&self) -> Vec<(Addr, u64)> {
        self.entries.iter().map(|e| (e.addr, e.val)).collect()
    }

    /// Allocated capacity (entry vector or hash slab) — the pool recycles a
    /// container whenever either is worth keeping.
    pub fn capacity(&self) -> usize {
        self.entries.capacity().max(self.index.capacity())
    }

    /// Empties the log, keeping all allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.cover.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redo_semantics_last_write_wins_in_place() {
        let mut log = WriteLog::new();
        assert!(log.record(Addr(1), 10, || 4));
        assert!(log.record(Addr(2), 20, || 5));
        assert!(!log.record(Addr(1), 11, || unreachable!("cached")));
        assert_eq!(log.lookup(Addr(1)), Some(11));
        assert_eq!(log.len(), 2);
        let order: Vec<(Addr, u64)> = log.iter().map(|e| (e.addr, e.val)).collect();
        assert_eq!(order, vec![(Addr(1), 11), (Addr(2), 20)]);
    }

    #[test]
    fn undo_semantics_first_value_is_kept() {
        let mut log = WriteLog::new();
        assert!(log.record_first(Addr(1), 10, || 4));
        assert!(!log.record_first(Addr(1), 99, || unreachable!("cached")));
        assert_eq!(log.lookup(Addr(1)), Some(10));
    }

    #[test]
    fn lookup_misses_cleanly() {
        let mut log = WriteLog::new();
        assert_eq!(log.lookup(Addr(3)), None, "empty log");
        log.record(Addr(1), 1, || 0);
        assert_eq!(log.lookup(Addr(3)), None);
        assert!(!log.contains(Addr(3)));
        assert!(log.contains(Addr(1)));
    }

    #[test]
    fn cover_tracks_distinct_stripes_sorted() {
        let mut log = WriteLog::new();
        log.record(Addr(1), 0, || 9);
        log.record(Addr(2), 0, || 2);
        log.record(Addr(3), 0, || 9);
        assert_eq!(log.orec_cover(), &[2, 9]);
    }

    #[test]
    fn drain_pairs_empties_but_keeps_capacity() {
        let mut log = WriteLog::new();
        log.record_first(Addr(8), 80, || 0);
        log.record_first(Addr(9), 90, || 0);
        let cap = log.capacity();
        assert_eq!(log.pairs(), vec![(Addr(8), 80), (Addr(9), 90)]);
        assert_eq!(log.drain_pairs(), vec![(Addr(8), 80), (Addr(9), 90)]);
        assert!(log.is_empty());
        assert_eq!(log.capacity(), cap);
    }

    #[test]
    fn entry_exposes_cached_stripe() {
        let mut log = WriteLog::new();
        log.record(Addr(5), 50, || 123);
        let e = log.entry(Addr(5)).unwrap();
        assert_eq!((e.addr, e.val, e.stripe), (Addr(5), 50, 123));
    }

    #[test]
    fn deep_logs_keep_o1_lookup_results() {
        let mut log = WriteLog::new();
        for i in 0..10_000 {
            log.record(Addr(i), i as u64, || i & 0x3F);
        }
        for i in (0..10_000).step_by(97) {
            assert_eq!(log.lookup(Addr(i)), Some(i as u64));
        }
        assert_eq!(log.orec_cover().len(), 64);
    }
}
