//! The open-addressed position map shared by the access-set containers.
//!
//! [`PosMap`] maps hashed `u64` keys to positions in an owner-maintained
//! entry vector.  It stores *only* positions: the owner keeps the actual
//! keys (addresses, stripe indices) in its entries and supplies an equality
//! probe, so the map stays a flat `u32` slab that is cheap to clear and to
//! recycle through the [`crate::access::LogPool`].
//!
//! Linear probing over a power-of-two table at ≤ 75 % load keeps probe
//! chains short; the owner rebuilds the map from its entries when
//! [`PosMap::needs_grow`] fires (growth is rare and amortised, and a rebuild
//! is just re-inserting positions).

/// Sentinel marking an empty slot.
const VACANT: u32 = u32::MAX;

/// Fibonacci-hashes a key into the top bits (same constant as
/// [`crate::orec::OrecTable::index_for`], chosen so nearby keys spread).
#[inline]
fn spread(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Where a probe ended: an existing entry position, or the vacant slot the
/// key would occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The key is present; payload is the entry position the owner stored.
    Found(u32),
    /// The key is absent; payload is the slot index to pass to
    /// [`PosMap::occupy`] when inserting.
    Vacant(usize),
}

/// An open-addressed map from hashed keys to entry positions.
#[derive(Debug, Default)]
pub(crate) struct PosMap {
    slots: Box<[u32]>,
    /// Number of occupied slots (mirrors the owner's entry count).
    len: usize,
}

impl PosMap {
    /// An empty map with no table allocated (grown on first insert).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        PosMap::default()
    }

    /// Number of occupied slots.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Total slot capacity (0 until the first grow).  The pool uses this to
    /// recognise a container whose entry vector was moved out but whose
    /// slab is still worth recycling.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The one insert protocol shared by every container: grow if needed
    /// (re-keying entries `0..count` through `key_of`), then probe for
    /// `key`.  Returns the existing entry position, or `None` after
    /// reserving a slot for position `count` (the caller then pushes the
    /// new entry at exactly that position).
    ///
    /// Keys are compared exactly (they are full addresses/indices, not
    /// hashes), so `key_of` doubles as the match predicate.
    #[inline]
    pub(crate) fn insert_or_find(
        &mut self,
        count: usize,
        key: u64,
        mut key_of: impl FnMut(u32) -> u64,
    ) -> Option<u32> {
        if self.needs_grow() {
            self.grow_from(count, &mut key_of);
        }
        match self.probe(key, |pos| key_of(pos) == key) {
            Probe::Found(pos) => Some(pos),
            Probe::Vacant(slot) => {
                self.occupy(slot, count as u32);
                None
            }
        }
    }

    /// True when an insert should trigger [`PosMap::grow_from`] first
    /// (keeps load below 75 %, and fires on the never-allocated map).
    #[inline]
    pub(crate) fn needs_grow(&self) -> bool {
        (self.len + 1) * 4 > self.slots.len() * 3
    }

    /// Probes for `key`, calling `is_match(pos)` against candidate entry
    /// positions until a match or a vacant slot is found.
    #[inline]
    pub(crate) fn probe(&self, key: u64, mut is_match: impl FnMut(u32) -> bool) -> Probe {
        debug_assert!(!self.slots.is_empty(), "probe before first grow");
        let mask = self.slots.len() - 1;
        let mut slot = (spread(key) >> 32) as usize & mask;
        loop {
            match self.slots[slot] {
                VACANT => return Probe::Vacant(slot),
                pos if is_match(pos) => return Probe::Found(pos),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Looks `key` up without reserving a slot (usable on the empty map).
    #[inline]
    pub(crate) fn lookup(&self, key: u64, is_match: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key, is_match) {
            Probe::Found(pos) => Some(pos),
            Probe::Vacant(_) => None,
        }
    }

    /// Fills the vacant slot returned by a probe with an entry position.
    #[inline]
    pub(crate) fn occupy(&mut self, slot: usize, pos: u32) {
        debug_assert_eq!(self.slots[slot], VACANT);
        debug_assert_ne!(pos, VACANT);
        self.slots[slot] = pos;
        self.len += 1;
    }

    /// Doubles the table (at least 8 slots) and re-inserts positions
    /// `0..count`, hashing each entry's key via `key_of(pos)`.
    pub(crate) fn grow_from(&mut self, count: usize, mut key_of: impl FnMut(u32) -> u64) {
        let new_cap = (self.slots.len() * 2).max(8);
        self.slots = vec![VACANT; new_cap].into_boxed_slice();
        self.len = 0;
        let mask = new_cap - 1;
        for pos in 0..count as u32 {
            let mut slot = (spread(key_of(pos)) >> 32) as usize & mask;
            while self.slots[slot] != VACANT {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = pos;
            self.len += 1;
        }
    }

    /// Empties the map, keeping the allocated table for reuse.
    pub(crate) fn clear(&mut self) {
        self.slots.fill(VACANT);
        self.len = 0;
    }
}

/// The stripe cover shared by [`crate::access::ReadSet`] and
/// [`crate::access::WriteLog`]: stripes are accumulated as they arrive and
/// sorted + deduplicated at most once per attempt, when the cover is first
/// consumed (deschedule registration, commit-time lock acquisition).
///
/// Accumulation is O(1) per stripe.  A strictly-increasing append stream —
/// including the degenerate constant-stripe stream of logs whose cover
/// nobody reads — never even sets the dirty flag, so those logs pay one
/// comparison per insert.  An earlier revision kept the cover sorted
/// incrementally with `Vec::insert`; at large transaction sizes the
/// per-insert memmove dominated the very scans this layer removes.
#[derive(Debug, Default)]
pub(crate) struct Cover {
    stripes: Vec<usize>,
    /// True when `stripes` may be unsorted or contain duplicates.
    dirty: bool,
}

impl Cover {
    /// Notes a stripe observed for a fresh entry.
    #[inline]
    pub(crate) fn note(&mut self, stripe: usize) {
        match self.stripes.last() {
            // Consecutive duplicates (and constant-stripe streams) are free.
            Some(&last) if last == stripe => {}
            Some(&last) => {
                if last > stripe {
                    self.dirty = true;
                }
                self.stripes.push(stripe);
            }
            None => self.stripes.push(stripe),
        }
    }

    /// The distinct stripes, sorted ascending (sorts on first use after a
    /// batch of out-of-order notes; a no-op when already clean).
    ///
    /// Invariant: when `dirty` is false the vector is sorted *and*
    /// deduplicated — a clean stream is strictly increasing because equal
    /// neighbours are skipped and decreasing appends set the flag.
    pub(crate) fn as_sorted(&mut self) -> &[usize] {
        if self.dirty {
            self.stripes.sort_unstable();
            self.stripes.dedup();
            self.dirty = false;
        }
        &self.stripes
    }

    /// Empties the cover, keeping its capacity.
    pub(crate) fn clear(&mut self) {
        self.stripes.clear();
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the map exactly as an owner does: keys live in a Vec, the map
    /// stores positions into it via the shared insert protocol.
    fn insert(map: &mut PosMap, keys: &mut Vec<u64>, key: u64) -> bool {
        if map
            .insert_or_find(keys.len(), key, |pos| keys[pos as usize])
            .is_some()
        {
            return false;
        }
        keys.push(key);
        true
    }

    #[test]
    fn insert_lookup_round_trip() {
        let mut map = PosMap::new();
        let mut keys = Vec::new();
        for k in 0..1000u64 {
            assert!(insert(&mut map, &mut keys, k * 7919));
        }
        for k in 0..1000u64 {
            let key = k * 7919;
            let pos = map.lookup(key, |p| keys[p as usize] == key).unwrap();
            assert_eq!(keys[pos as usize], key);
        }
        assert_eq!(map.lookup(42, |p| keys[p as usize] == 42), None);
    }

    #[test]
    fn duplicate_inserts_are_rejected() {
        let mut map = PosMap::new();
        let mut keys = Vec::new();
        assert!(insert(&mut map, &mut keys, 5));
        assert!(!insert(&mut map, &mut keys, 5));
        assert_eq!(keys.len(), 1);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut map = PosMap::new();
        let mut keys = Vec::new();
        for k in 0..100 {
            insert(&mut map, &mut keys, k);
        }
        let cap = map.capacity();
        map.clear();
        keys.clear();
        assert_eq!(map.len(), 0);
        assert_eq!(map.capacity(), cap);
        assert!(insert(&mut map, &mut keys, 7));
    }

    #[test]
    fn cover_accumulates_and_sorts_on_demand() {
        let mut c = Cover::default();
        for s in [5, 5, 9, 2, 9, 2, 2] {
            c.note(s);
        }
        assert_eq!(c.as_sorted(), &[2, 5, 9]);
        // Clean after sorting; in-order notes stay clean and deduped.
        c.note(12);
        c.note(12);
        assert_eq!(c.as_sorted(), &[2, 5, 9, 12]);
        c.clear();
        assert!(c.as_sorted().is_empty());
    }

    #[test]
    fn constant_stripe_cover_stays_degenerate() {
        let mut c = Cover::default();
        for _ in 0..10_000 {
            c.note(0);
        }
        assert_eq!(c.as_sorted(), &[0]);
    }

    #[test]
    fn colliding_keys_coexist() {
        // Keys crafted to collide in small tables still resolve by probing.
        let mut map = PosMap::new();
        let mut keys = Vec::new();
        for k in 0..64u64 {
            assert!(insert(&mut map, &mut keys, k << 56));
        }
        for k in 0..64u64 {
            let key = k << 56;
            assert!(map.lookup(key, |p| keys[p as usize] == key).is_some());
        }
    }
}
