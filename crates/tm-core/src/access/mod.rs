//! The shared transaction access-set layer.
//!
//! The paper's Appendix A algorithms treat each transaction's read set,
//! write log and lock set as abstract sets; this module is their one
//! concrete implementation, shared by all three runtimes:
//!
//! * [`ReadSet`] — deduplicating append with cached orec stripes and a
//!   distinct-stripe cover accumulated in O(1) per read and sorted at most
//!   once per attempt (no re-deriving the cover from the full address list
//!   at deschedule time, no re-hash at validation time),
//! * [`WriteLog`] — insertion-ordered entries with an open-addressed hash
//!   index: O(1) read-after-write lookup and "have I written this address"
//!   tests for redo logs, undo logs and the `Retry` value log alike,
//! * [`IndexSet`] — insertion-ordered, O(1)-membership sets of small
//!   indices (orec lock sets, HTM line-slot sets),
//! * [`LogPool`] — the per-thread recycler that hands a rolled-back
//!   attempt's capacity to the next attempt instead of reallocating
//!   (reached through [`crate::thread::ThreadCtx`]).
//!
//! Exactly the workloads the paper cares about — large transactions that
//! block, roll back and re-execute under condition synchronization — used
//! to pay O(log size) per read-after-write and a full sort+dedup per
//! deschedule on the flat `Vec` logs these types replace.

mod index;
mod index_set;
mod pool;
mod read_set;
mod write_log;

pub use index_set::IndexSet;
pub use pool::{LogPool, Taken};
pub use read_set::{ReadEntry, ReadSet};
pub use write_log::{WriteEntry, WriteLog};

use crate::orec::OrecTable;

/// True if every stripe in `cover` is unlocked and no newer than `start`.
///
/// The shared validity check behind `Retry-Orig` registration and
/// [`ReadSet::valid_at`]; the runtimes previously each carried their own
/// copy (`reads_valid_at`).
pub fn cover_valid_at(orecs: &OrecTable, cover: &[usize], start: u64) -> bool {
    cover.iter().all(|&idx| {
        let o = orecs.load(idx);
        !o.is_locked() && o.version() <= start
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orec::OrecValue;

    #[test]
    fn cover_valid_at_matches_per_stripe_state() {
        let orecs = OrecTable::new(32);
        assert!(cover_valid_at(&orecs, &[0, 1, 2], 0));
        orecs.store(1, OrecValue::unlocked(7));
        assert!(!cover_valid_at(&orecs, &[0, 1, 2], 6));
        assert!(cover_valid_at(&orecs, &[0, 1, 2], 7));
        orecs.store(2, OrecValue::locked(0, 3));
        assert!(!cover_valid_at(&orecs, &[2], 100));
        assert!(cover_valid_at(&orecs, &[], 0), "empty cover is valid");
    }
}
