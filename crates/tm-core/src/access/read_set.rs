//! The deduplicating read set with an incrementally maintained orec cover.

use crate::addr::Addr;
use crate::orec::OrecTable;

use super::index::{Cover, PosMap};

/// One validated read: the address and the ownership-record stripe it
/// hashed to when the read was performed.
///
/// Caching the stripe is what removes the second `index_for` hash from the
/// validation paths: commit-time validation and deschedule registration
/// both replay the index computed at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// The address that was read.
    pub addr: Addr,
    /// The orec stripe index `addr` hashed to at read time.
    pub stripe: usize,
}

/// A transaction's read set: deduplicating append, cached stripe indices,
/// and a cover of the distinct orec stripes read, sorted at most once per
/// attempt.
///
/// The paper's algorithms treat `reads` as an abstract set; the flat-`Vec`
/// predecessor of this type re-sorted and re-deduplicated the *whole
/// address list* on every deschedule (`read_orec_indices`) and re-hashed
/// every address at commit-time validation.  Here stripes accumulate in
/// O(1) per read and [`ReadSet::orec_cover`] sorts + deduplicates only the
/// stripes, only when the cover is first consumed.
///
/// ```
/// use tm_core::access::ReadSet;
/// use tm_core::{Addr, OrecTable};
///
/// let orecs = OrecTable::new(256);
/// let mut reads = ReadSet::new();
/// for addr in [Addr(3), Addr(90), Addr(3)] {
///     reads.record(addr, orecs.index_for(addr));
/// }
/// assert_eq!(reads.len(), 2, "re-reads deduplicate");
/// let cover = reads.orec_cover();
/// assert!(cover.windows(2).all(|w| w[0] < w[1]), "cover is sorted");
/// assert!(cover.contains(&orecs.index_for(Addr(90))));
/// ```
#[derive(Debug, Default)]
pub struct ReadSet {
    entries: Vec<ReadEntry>,
    index: PosMap,
    cover: Cover,
}

impl ReadSet {
    /// An empty read set (no allocation until the first record).
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// Number of distinct addresses read.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been read.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a validated read of `addr` whose orec stripe is `stripe`.
    ///
    /// Returns `true` if the address was new; re-reads are deduplicated in
    /// O(1) instead of growing the set.
    pub fn record(&mut self, addr: Addr, stripe: usize) -> bool {
        let entries = &self.entries;
        if self
            .index
            .insert_or_find(entries.len(), addr.0 as u64, |pos| {
                entries[pos as usize].addr.0 as u64
            })
            .is_some()
        {
            return false;
        }
        self.entries.push(ReadEntry { addr, stripe });
        self.cover.note(stripe);
        true
    }

    /// True if `addr` has been recorded.
    pub fn contains(&self, addr: Addr) -> bool {
        let entries = &self.entries;
        self.index
            .lookup(addr.0 as u64, |pos| entries[pos as usize].addr == addr)
            .is_some()
    }

    /// The recorded reads, in first-read order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadEntry> {
        self.entries.iter()
    }

    /// The distinct orec stripes covering the read set, sorted ascending.
    ///
    /// Stripes accumulate in O(1) per fresh address as reads happen; the
    /// sort + dedup runs at most once per batch of out-of-order inserts,
    /// here — descheduling (`Retry-Orig` registration) no longer re-derives
    /// the cover from the full address list.
    pub fn orec_cover(&mut self) -> &[usize] {
        self.cover.as_sorted()
    }

    /// True if every covered stripe is still unlocked and no newer than
    /// `start` — the read set is consistent with a snapshot at `start`.
    ///
    /// This is the one shared implementation of the validity check the
    /// runtimes previously each hand-rolled (`reads_valid_at`); the
    /// slice-based [`super::cover_valid_at`] serves callers that only kept
    /// the cover.
    pub fn valid_at(&mut self, orecs: &OrecTable, start: u64) -> bool {
        let cover = self.cover.as_sorted();
        super::cover_valid_at(orecs, cover, start)
    }

    /// Allocated capacity (entry vector or hash slab) — the pool recycles a
    /// container whenever either is worth keeping.
    pub fn capacity(&self) -> usize {
        self.entries.capacity().max(self.index.capacity())
    }

    /// Empties the set, keeping all allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.cover.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_deduplicates_and_keeps_order() {
        let mut rs = ReadSet::new();
        assert!(rs.record(Addr(5), 1));
        assert!(rs.record(Addr(9), 3));
        assert!(!rs.record(Addr(5), 1));
        assert!(rs.record(Addr(2), 2));
        let addrs: Vec<Addr> = rs.iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![Addr(5), Addr(9), Addr(2)]);
        assert_eq!(rs.len(), 3);
        assert!(rs.contains(Addr(9)));
        assert!(!rs.contains(Addr(99)));
    }

    #[test]
    fn cover_is_sorted_and_distinct() {
        let mut rs = ReadSet::new();
        rs.record(Addr(1), 40);
        rs.record(Addr(2), 7);
        rs.record(Addr(3), 40);
        rs.record(Addr(4), 12);
        assert_eq!(rs.orec_cover(), &[7, 12, 40]);
    }

    #[test]
    fn valid_at_checks_lock_and_version() {
        use crate::orec::OrecValue;
        let orecs = OrecTable::new(64);
        let mut rs = ReadSet::new();
        let addr = Addr(10);
        let idx = orecs.index_for(addr);
        rs.record(addr, idx);
        assert!(rs.valid_at(&orecs, 0));
        orecs.store(idx, OrecValue::unlocked(5));
        assert!(!rs.valid_at(&orecs, 4), "newer version invalidates");
        assert!(rs.valid_at(&orecs, 5));
        orecs.store(idx, OrecValue::locked(5, 0));
        assert!(!rs.valid_at(&orecs, 9), "locked stripe invalidates");
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let mut rs = ReadSet::new();
        for i in 0..500 {
            rs.record(Addr(i), i % 13);
        }
        let cap = rs.capacity();
        rs.clear();
        assert!(rs.is_empty());
        assert!(rs.orec_cover().is_empty());
        assert_eq!(rs.capacity(), cap);
        assert!(rs.record(Addr(1), 1), "cleared set accepts old addresses");
    }

    #[test]
    fn large_sets_stay_consistent() {
        let mut rs = ReadSet::new();
        for i in 0..10_000 {
            assert!(rs.record(Addr(i), i & 0xFF));
        }
        for i in 0..10_000 {
            assert!(!rs.record(Addr(i), i & 0xFF), "addr {i} must dedup");
        }
        assert_eq!(rs.len(), 10_000);
        assert_eq!(rs.orec_cover().len(), 256);
    }
}
