//! The per-thread log pool: rolled-back attempts recycle their capacity.

use crate::lock::Mutex;

use super::index_set::IndexSet;
use super::read_set::ReadSet;
use super::write_log::WriteLog;

/// Spare instances kept per container kind; a single attempt uses at most
/// one read set, two write logs (undo/redo + `Retry` value log) and two
/// index sets (HTM read/write slots), so a small bound suffices.
const MAX_SPARES: usize = 4;

#[derive(Debug, Default)]
struct PoolInner {
    read_sets: Vec<ReadSet>,
    write_logs: Vec<WriteLog>,
    index_sets: Vec<IndexSet>,
}

/// A pool of cleared access-set containers owned by one thread context.
///
/// Every re-executed transaction attempt used to rebuild its logs from
/// `Vec::new()`, paying the full growth sequence again; the pool hands the
/// previous attempt's (cleared) containers back instead, so the
/// re-execution path performs zero log allocations after the first attempt.
///
/// The mutex is uncontended in steady state — only the owning thread takes
/// and returns containers — but keeps the pool safely shareable through the
/// `Arc<ThreadCtx>` that committers and wakers already clone.
#[derive(Debug, Default)]
pub struct LogPool {
    inner: Mutex<PoolInner>,
}

/// What a take returned: a recycled container or a fresh one.  Callers
/// (see [`crate::thread::ThreadCtx::take_read_set`] and friends) bump the
/// `log_pool_reuses` statistic on [`Taken::Recycled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taken {
    /// The container came from the pool with capacity already grown.
    Recycled,
    /// The pool was empty; the container is brand new (and empty).
    Fresh,
}

impl LogPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        LogPool::default()
    }

    /// Takes a cleared read set, recycling a pooled one when available.
    pub fn take_read_set(&self) -> (ReadSet, Taken) {
        match self.inner.lock().read_sets.pop() {
            Some(s) => (s, Taken::Recycled),
            None => (ReadSet::new(), Taken::Fresh),
        }
    }

    /// Takes a cleared write log, recycling a pooled one when available.
    pub fn take_write_log(&self) -> (WriteLog, Taken) {
        match self.inner.lock().write_logs.pop() {
            Some(l) => (l, Taken::Recycled),
            None => (WriteLog::new(), Taken::Fresh),
        }
    }

    /// Takes a cleared index set, recycling a pooled one when available.
    pub fn take_index_set(&self) -> (IndexSet, Taken) {
        match self.inner.lock().index_sets.pop() {
            Some(s) => (s, Taken::Recycled),
            None => (IndexSet::new(), Taken::Fresh),
        }
    }

    /// Returns a read set to the pool (cleared; dropped if it never grew or
    /// the pool is full).
    pub fn put_read_set(&self, mut s: ReadSet) {
        if s.capacity() == 0 {
            return;
        }
        s.clear();
        let mut inner = self.inner.lock();
        if inner.read_sets.len() < MAX_SPARES {
            inner.read_sets.push(s);
        }
    }

    /// Returns a write log to the pool (cleared; dropped if it never grew
    /// or the pool is full).
    pub fn put_write_log(&self, mut l: WriteLog) {
        if l.capacity() == 0 {
            return;
        }
        l.clear();
        let mut inner = self.inner.lock();
        if inner.write_logs.len() < MAX_SPARES {
            inner.write_logs.push(l);
        }
    }

    /// Returns an index set to the pool (cleared; dropped if it never grew
    /// or the pool is full).
    pub fn put_index_set(&self, mut s: IndexSet) {
        if s.capacity() == 0 {
            return;
        }
        s.clear();
        let mut inner = self.inner.lock();
        if inner.index_sets.len() < MAX_SPARES {
            inner.index_sets.push(s);
        }
    }

    /// Number of pooled containers across all kinds (for tests).
    pub fn spares(&self) -> usize {
        let inner = self.inner.lock();
        inner.read_sets.len() + inner.write_logs.len() + inner.index_sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn round_trip_recycles_capacity() {
        let pool = LogPool::new();
        let (mut rs, taken) = pool.take_read_set();
        assert_eq!(taken, Taken::Fresh);
        for i in 0..100 {
            rs.record(Addr(i), i);
        }
        let cap = rs.capacity();
        pool.put_read_set(rs);
        assert_eq!(pool.spares(), 1);
        let (rs, taken) = pool.take_read_set();
        assert_eq!(taken, Taken::Recycled);
        assert!(rs.is_empty(), "pooled containers come back cleared");
        assert_eq!(rs.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn zero_capacity_containers_are_not_pooled() {
        let pool = LogPool::new();
        pool.put_read_set(ReadSet::new());
        pool.put_write_log(WriteLog::new());
        pool.put_index_set(IndexSet::new());
        assert_eq!(pool.spares(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = LogPool::new();
        for _ in 0..(2 * MAX_SPARES) {
            let mut l = WriteLog::new();
            l.record(Addr(1), 1, || 0);
            pool.put_write_log(l);
        }
        assert_eq!(pool.spares(), MAX_SPARES);
    }
}
