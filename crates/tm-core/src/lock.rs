//! Non-poisoning mutex, reader–writer lock and condition variable.
//!
//! Thin wrappers over `std::sync` exposing the `parking_lot`-style API the
//! rest of the workspace uses (`lock()` returning a guard directly, and
//! `Condvar::wait(&mut guard)`).  The build environment has no access to
//! crates.io, so instead of depending on `parking_lot` we provide the same
//! ergonomics here: poisoning is deliberately swallowed — a panic while
//! holding one of these locks only ever happens in tests, where the
//! panicking test already reports the failure.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is re-acquired before returning (the guard stays valid).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.  Returns `true`
    /// if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        res.timed_out()
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a reader–writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            42
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
