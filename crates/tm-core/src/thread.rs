//! Thread contexts and the global thread registry.
//!
//! Each worker thread registers once with the [`crate::system::TmSystem`] and
//! receives an [`ThreadCtx`] carrying its identity, statistics, its padded
//! slot in the system's [`EpochTable`] (published start time for
//! privatization-safe quiescence plus the last commit epoch the lazy clock
//! scans), and the "doomed" flag through which the HTM simulator delivers
//! asynchronous conflict aborts.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::access::{IndexSet, LogPool, ReadSet, Taken, WriteLog};
use crate::epoch::{EpochSlot, EpochTable};
use crate::lock::RwLock;
use crate::pad::CachePadded;

use crate::sem::Semaphore;
use crate::stats::{OpClass, TxStats};

/// Identifier of a registered thread (dense, starting from 0).
pub type ThreadId = usize;

/// Sentinel published as a thread's start time when it is not inside a
/// transaction.
pub const NOT_IN_TX: u64 = u64::MAX;

/// Epoch-table capacity of a standalone [`ThreadRegistry::new`] (unit-test
/// convenience; systems size theirs from
/// [`crate::config::TmConfig::max_threads`]).
const STANDALONE_REGISTRY_CAPACITY: usize = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-thread context shared between the thread itself and other threads
/// (committers performing quiescence, hardware transactions dooming each
/// other, writers waking sleepers).
#[derive(Debug)]
pub struct ThreadCtx {
    /// Dense thread identifier.
    pub id: ThreadId,
    /// Event counters.
    pub stats: TxStats,
    /// The shared epoch table; this thread owns slot [`ThreadCtx::id`],
    /// which carries its published start time and last commit epoch on a
    /// private cache line.
    epochs: Arc<EpochTable>,
    /// Set by another thread to doom this thread's in-flight *hardware*
    /// transaction (simulating a coherence-triggered abort).  Padded: it is
    /// remote-written on conflicts and owner-polled on the hardware hot
    /// path, so it must not share a line with the rest of the context.
    pub doomed: CachePadded<AtomicBool>,
    /// Parking semaphore used when the thread is descheduled.
    pub sem: Semaphore,
    /// Recycler for the thread's access-set containers: a rolled-back
    /// attempt's read set / write log / index sets go back here and the
    /// next attempt takes them out with their capacity intact.
    pub pool: LogPool,
    /// xorshift64 state for the thread's backoff jitter, seeded from the
    /// thread id.  Owner-only (replaces the driver's old process-global
    /// seed atomic, which was a shared hot line).
    backoff_rng: CachePadded<AtomicU64>,
    /// Workload-declared [`OpClass`] tag of the operation this thread is
    /// currently running (0 = none).  Owner-written around each operation
    /// and owner-read by the driver at commit, but padded so the store/load
    /// traffic never dirties a neighbour's line.
    op_class: CachePadded<AtomicU8>,
}

impl ThreadCtx {
    fn new(id: ThreadId, epochs: Arc<EpochTable>) -> Self {
        ThreadCtx {
            id,
            stats: TxStats::default(),
            epochs,
            doomed: CachePadded::new(AtomicBool::new(false)),
            sem: Semaphore::new(),
            pool: LogPool::new(),
            // splitmix64 never maps distinct inputs to the same output and
            // maps nothing to 0 except one input; or-in a bit so xorshift
            // (which fixes 0) always starts live.
            backoff_rng: CachePadded::new(AtomicU64::new(splitmix64(id as u64 + 1) | 1)),
            op_class: CachePadded::new(AtomicU8::new(0)),
        }
    }

    /// Declares the operation class of the transactions this thread is about
    /// to run; the driver routes their commit latency into the class's
    /// histogram until [`clear_op_class`](Self::clear_op_class).
    #[inline]
    pub fn set_op_class(&self, class: OpClass) {
        self.op_class.store(class.tag(), Ordering::Relaxed);
    }

    /// Clears the operation-class tag (latency goes only to the commit-class
    /// histograms again).
    #[inline]
    pub fn clear_op_class(&self) {
        self.op_class.store(0, Ordering::Relaxed);
    }

    /// The operation class currently declared on this thread, if any.
    #[inline]
    pub fn op_class(&self) -> Option<OpClass> {
        OpClass::from_tag(self.op_class.load(Ordering::Relaxed))
    }

    /// This thread's padded epoch-table slot.
    #[inline]
    pub fn epoch_slot(&self) -> &EpochSlot {
        self.epochs.slot(self.id)
    }

    /// The epoch table this thread publishes into.
    pub fn epochs(&self) -> &Arc<EpochTable> {
        &self.epochs
    }

    /// Next value of the thread's private backoff RNG (xorshift64).
    ///
    /// Deterministic per thread id, and touches only this thread's own
    /// cache line.
    #[inline]
    pub fn next_backoff_seed(&self) -> u64 {
        let mut s = self.backoff_rng.load(Ordering::Relaxed);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.backoff_rng.store(s, Ordering::Relaxed);
        s
    }

    fn note_reuse(&self, taken: Taken) {
        if taken == Taken::Recycled {
            TxStats::bump(&self.stats.log_pool_reuses);
        }
    }

    /// Takes a cleared [`ReadSet`] from the pool, counting the reuse.
    pub fn take_read_set(&self) -> ReadSet {
        let (set, taken) = self.pool.take_read_set();
        self.note_reuse(taken);
        set
    }

    /// Returns a read set to the pool, recording the attempt's read-set
    /// high-water mark.
    pub fn put_read_set(&self, set: ReadSet) {
        TxStats::record_max(&self.stats.read_set_max, set.len() as u64);
        self.pool.put_read_set(set);
    }

    /// Takes a cleared [`WriteLog`] from the pool, counting the reuse.
    pub fn take_write_log(&self) -> WriteLog {
        let (log, taken) = self.pool.take_write_log();
        self.note_reuse(taken);
        log
    }

    /// Returns a write log to the pool, recording the attempt's write-log
    /// high-water mark.
    pub fn put_write_log(&self, log: WriteLog) {
        TxStats::record_max(&self.stats.write_set_max, log.len() as u64);
        self.pool.put_write_log(log);
    }

    /// Takes a cleared [`IndexSet`] from the pool, counting the reuse.
    pub fn take_index_set(&self) -> IndexSet {
        let (set, taken) = self.pool.take_index_set();
        self.note_reuse(taken);
        set
    }

    /// Returns an index set to the pool.
    pub fn put_index_set(&self, set: IndexSet) {
        self.pool.put_index_set(set);
    }

    /// Publishes the start time of an in-flight transaction.
    #[inline]
    pub fn enter_tx(&self, start: u64) {
        self.epoch_slot().set_start(start);
    }

    /// Publishes that the thread is no longer inside a transaction.
    #[inline]
    pub fn exit_tx(&self) {
        self.epoch_slot().clear_start();
    }

    /// The published start time, or [`NOT_IN_TX`].
    #[inline]
    pub fn published_start(&self) -> u64 {
        self.epoch_slot().start()
    }

    /// Publishes a completed writer commit's timestamp to this thread's
    /// epoch slot.
    ///
    /// Call only after the commit is fully visible (write-back done, every
    /// ownership record released) and **before** [`exit_tx`](Self::exit_tx)
    /// or quiescence: a published epoch is a promise that any transaction
    /// beginning afterwards starts at or above it, which is both the lazy
    /// clock's correctness condition and what guarantees the publisher's own
    /// quiescence wait terminates.
    #[inline]
    pub fn publish_epoch(&self, ts: u64) {
        self.epoch_slot().set_epoch(ts);
    }

    /// The thread's last published commit epoch.
    #[inline]
    pub fn commit_epoch(&self) -> u64 {
        self.epoch_slot().epoch()
    }

    /// Marks this thread's hardware transaction as doomed.
    #[inline]
    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// Clears and returns the doomed flag (called when a hardware attempt
    /// begins or notices the abort).
    #[inline]
    pub fn take_doomed(&self) -> bool {
        self.doomed.swap(false, Ordering::AcqRel)
    }

    /// Reads the doomed flag without clearing it.
    #[inline]
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }
}

/// Registry of all threads that ever joined the system.
#[derive(Debug)]
pub struct ThreadRegistry {
    threads: RwLock<Vec<Arc<ThreadCtx>>>,
    /// The epoch table shared with the clock plane; registration activates
    /// one padded slot per thread.
    epochs: Arc<EpochTable>,
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        ThreadRegistry::new()
    }
}

impl ThreadRegistry {
    /// Creates an empty standalone registry (with its own small epoch
    /// table; systems share theirs via [`ThreadRegistry::with_epochs`]).
    pub fn new() -> Self {
        ThreadRegistry::with_epochs(Arc::new(EpochTable::new(STANDALONE_REGISTRY_CAPACITY)))
    }

    /// Creates an empty registry whose threads publish into `epochs`.
    pub fn with_epochs(epochs: Arc<EpochTable>) -> Self {
        ThreadRegistry {
            threads: RwLock::new(Vec::new()),
            epochs,
        }
    }

    /// The epoch table this registry's threads publish into.
    pub fn epochs(&self) -> &Arc<EpochTable> {
        &self.epochs
    }

    /// Registers a new thread and returns its context.
    ///
    /// Panics when the epoch table is full (raise
    /// [`crate::config::TmConfig::max_threads`]).
    pub fn register(&self) -> Arc<ThreadCtx> {
        let mut threads = self.threads.write();
        let id = threads.len();
        self.epochs.activate(id);
        let ctx = Arc::new(ThreadCtx::new(id, Arc::clone(&self.epochs)));
        threads.push(Arc::clone(&ctx));
        ctx
    }

    /// Number of registered threads.
    pub fn len(&self) -> usize {
        self.threads.read().len()
    }

    /// True if no thread has registered yet.
    pub fn is_empty(&self) -> bool {
        self.threads.read().is_empty()
    }

    /// A snapshot of all registered threads.
    pub fn snapshot(&self) -> Vec<Arc<ThreadCtx>> {
        self.threads.read().clone()
    }

    /// Looks up a thread by id (used by the HTM simulator to deliver
    /// conflict aborts).
    pub fn get(&self, id: ThreadId) -> Option<Arc<ThreadCtx>> {
        self.threads.read().get(id).cloned()
    }

    /// Runs `f` for every registered thread other than `me`.
    pub fn for_each_other<F: FnMut(&ThreadCtx)>(&self, me: ThreadId, mut f: F) {
        for t in self.threads.read().iter() {
            if t.id != me {
                f(t);
            }
        }
    }

    /// Aggregated statistics across all threads.
    pub fn aggregate_stats(&self) -> crate::stats::StatsSnapshot {
        self.threads
            .read()
            .iter()
            .map(|t| t.stats.snapshot())
            .fold(crate::stats::StatsSnapshot::default(), |a, b| a.merge(&b))
    }

    /// Resets every thread's statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        for t in self.threads.read().iter() {
            t.stats.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TxStats;

    #[test]
    fn registration_assigns_dense_ids() {
        let r = ThreadRegistry::new();
        let a = r.register();
        let b = r.register();
        let c = r.register();
        assert_eq!((a.id, b.id, c.id), (0, 1, 2));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn start_time_defaults_to_not_in_tx() {
        let r = ThreadRegistry::new();
        let t = r.register();
        assert_eq!(t.published_start(), NOT_IN_TX);
        t.enter_tx(42);
        assert_eq!(t.published_start(), 42);
        t.exit_tx();
        assert_eq!(t.published_start(), NOT_IN_TX);
    }

    #[test]
    fn doom_flag_is_sticky_until_taken() {
        let r = ThreadRegistry::new();
        let t = r.register();
        assert!(!t.is_doomed());
        t.doom();
        assert!(t.is_doomed());
        assert!(t.take_doomed());
        assert!(!t.is_doomed());
        assert!(!t.take_doomed());
    }

    #[test]
    fn for_each_other_skips_self() {
        let r = ThreadRegistry::new();
        let me = r.register();
        let _a = r.register();
        let _b = r.register();
        let mut seen = Vec::new();
        r.for_each_other(me.id, |t| seen.push(t.id));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn pool_round_trip_counts_reuses_and_high_water_marks() {
        use crate::addr::Addr;
        let r = ThreadRegistry::new();
        let t = r.register();

        let mut reads = t.take_read_set();
        let mut log = t.take_write_log();
        assert_eq!(
            t.stats.snapshot().log_pool_reuses,
            0,
            "first takes are fresh"
        );
        for i in 0..10 {
            reads.record(Addr(i), i);
        }
        log.record(Addr(1), 1, || 0);
        log.record(Addr(2), 2, || 0);
        t.put_read_set(reads);
        t.put_write_log(log);

        let snap = t.stats.snapshot();
        assert_eq!(snap.read_set_max, 10);
        assert_eq!(snap.write_set_max, 2);

        let reads = t.take_read_set();
        let log = t.take_write_log();
        assert!(reads.is_empty() && log.is_empty());
        assert_eq!(t.stats.snapshot().log_pool_reuses, 2);
    }

    #[test]
    fn aggregate_and_reset_stats() {
        let r = ThreadRegistry::new();
        let a = r.register();
        let b = r.register();
        TxStats::bump(&a.stats.sw_commits);
        TxStats::bump(&b.stats.sw_commits);
        TxStats::bump(&b.stats.sleeps);
        let agg = r.aggregate_stats();
        assert_eq!(agg.sw_commits, 2);
        assert_eq!(agg.sleeps, 1);
        r.reset_stats();
        assert_eq!(r.aggregate_stats().sw_commits, 0);
    }

    #[test]
    fn start_times_are_visible_through_the_epoch_table() {
        let r = ThreadRegistry::new();
        let t = r.register();
        t.enter_tx(9);
        assert_eq!(r.epochs().slot(t.id).start(), 9);
        t.exit_tx();
        assert_eq!(r.epochs().slot(t.id).start(), NOT_IN_TX);
    }

    #[test]
    fn publish_epoch_feeds_the_shared_scan() {
        let r = ThreadRegistry::new();
        let a = r.register();
        let b = r.register();
        assert_eq!(a.commit_epoch(), 0);
        a.publish_epoch(5);
        b.publish_epoch(3);
        assert_eq!(a.commit_epoch(), 5);
        assert_eq!(r.epochs().max_epoch(), 5);
    }

    #[test]
    fn backoff_rng_is_deterministic_per_thread_and_distinct_across_threads() {
        let r1 = ThreadRegistry::new();
        let r2 = ThreadRegistry::new();
        let a1 = r1.register();
        let b1 = r1.register();
        let a2 = r2.register();
        let seq_a1: Vec<u64> = (0..4).map(|_| a1.next_backoff_seed()).collect();
        let seq_b1: Vec<u64> = (0..4).map(|_| b1.next_backoff_seed()).collect();
        let seq_a2: Vec<u64> = (0..4).map(|_| a2.next_backoff_seed()).collect();
        assert_eq!(seq_a1, seq_a2, "same id, same sequence");
        assert_ne!(seq_a1, seq_b1, "different ids diverge");
        assert!(seq_a1.iter().all(|&s| s != 0), "xorshift state stays live");
    }

    #[test]
    fn registration_panics_when_the_epoch_table_is_full() {
        let r = ThreadRegistry::with_epochs(Arc::new(EpochTable::new(1)));
        let _ok = r.register();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.register()));
        assert!(attempt.is_err());
    }
}
