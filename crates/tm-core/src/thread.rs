//! Thread contexts and the global thread registry.
//!
//! Each worker thread registers once with the [`crate::system::TmSystem`] and
//! receives an [`ThreadCtx`] carrying its identity, statistics, the published
//! start time used for privatization-safe quiescence, and the "doomed" flag
//! through which the HTM simulator delivers asynchronous conflict aborts.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::access::{IndexSet, LogPool, ReadSet, Taken, WriteLog};
use crate::lock::RwLock;

use crate::sem::Semaphore;
use crate::stats::TxStats;

/// Identifier of a registered thread (dense, starting from 0).
pub type ThreadId = usize;

/// Sentinel published in [`ThreadCtx::start_time`] when the thread is not
/// inside a transaction.
pub const NOT_IN_TX: u64 = u64::MAX;

/// Per-thread context shared between the thread itself and other threads
/// (committers performing quiescence, hardware transactions dooming each
/// other, writers waking sleepers).
#[derive(Debug)]
pub struct ThreadCtx {
    /// Dense thread identifier.
    pub id: ThreadId,
    /// Event counters.
    pub stats: TxStats,
    /// Global-clock value at which the thread's in-flight transaction
    /// started, or [`NOT_IN_TX`].  Committing writers wait until every other
    /// thread's published start time advances past their commit time
    /// (quiescence, Appendix A).
    pub start_time: AtomicU64,
    /// Set by another thread to doom this thread's in-flight *hardware*
    /// transaction (simulating a coherence-triggered abort).
    pub doomed: AtomicBool,
    /// Parking semaphore used when the thread is descheduled.
    pub sem: Semaphore,
    /// Recycler for the thread's access-set containers: a rolled-back
    /// attempt's read set / write log / index sets go back here and the
    /// next attempt takes them out with their capacity intact.
    pub pool: LogPool,
}

impl ThreadCtx {
    fn new(id: ThreadId) -> Self {
        ThreadCtx {
            id,
            stats: TxStats::default(),
            start_time: AtomicU64::new(NOT_IN_TX),
            doomed: AtomicBool::new(false),
            sem: Semaphore::new(),
            pool: LogPool::new(),
        }
    }

    fn note_reuse(&self, taken: Taken) {
        if taken == Taken::Recycled {
            TxStats::bump(&self.stats.log_pool_reuses);
        }
    }

    /// Takes a cleared [`ReadSet`] from the pool, counting the reuse.
    pub fn take_read_set(&self) -> ReadSet {
        let (set, taken) = self.pool.take_read_set();
        self.note_reuse(taken);
        set
    }

    /// Returns a read set to the pool, recording the attempt's read-set
    /// high-water mark.
    pub fn put_read_set(&self, set: ReadSet) {
        TxStats::record_max(&self.stats.read_set_max, set.len() as u64);
        self.pool.put_read_set(set);
    }

    /// Takes a cleared [`WriteLog`] from the pool, counting the reuse.
    pub fn take_write_log(&self) -> WriteLog {
        let (log, taken) = self.pool.take_write_log();
        self.note_reuse(taken);
        log
    }

    /// Returns a write log to the pool, recording the attempt's write-log
    /// high-water mark.
    pub fn put_write_log(&self, log: WriteLog) {
        TxStats::record_max(&self.stats.write_set_max, log.len() as u64);
        self.pool.put_write_log(log);
    }

    /// Takes a cleared [`IndexSet`] from the pool, counting the reuse.
    pub fn take_index_set(&self) -> IndexSet {
        let (set, taken) = self.pool.take_index_set();
        self.note_reuse(taken);
        set
    }

    /// Returns an index set to the pool.
    pub fn put_index_set(&self, set: IndexSet) {
        self.pool.put_index_set(set);
    }

    /// Publishes the start time of an in-flight transaction.
    #[inline]
    pub fn enter_tx(&self, start: u64) {
        self.start_time.store(start, Ordering::Release);
    }

    /// Publishes that the thread is no longer inside a transaction.
    #[inline]
    pub fn exit_tx(&self) {
        self.start_time.store(NOT_IN_TX, Ordering::Release);
    }

    /// The published start time, or [`NOT_IN_TX`].
    #[inline]
    pub fn published_start(&self) -> u64 {
        self.start_time.load(Ordering::Acquire)
    }

    /// Marks this thread's hardware transaction as doomed.
    #[inline]
    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// Clears and returns the doomed flag (called when a hardware attempt
    /// begins or notices the abort).
    #[inline]
    pub fn take_doomed(&self) -> bool {
        self.doomed.swap(false, Ordering::AcqRel)
    }

    /// Reads the doomed flag without clearing it.
    #[inline]
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }
}

/// Registry of all threads that ever joined the system.
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    threads: RwLock<Vec<Arc<ThreadCtx>>>,
}

impl ThreadRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ThreadRegistry::default()
    }

    /// Registers a new thread and returns its context.
    pub fn register(&self) -> Arc<ThreadCtx> {
        let mut threads = self.threads.write();
        let ctx = Arc::new(ThreadCtx::new(threads.len()));
        threads.push(Arc::clone(&ctx));
        ctx
    }

    /// Number of registered threads.
    pub fn len(&self) -> usize {
        self.threads.read().len()
    }

    /// True if no thread has registered yet.
    pub fn is_empty(&self) -> bool {
        self.threads.read().is_empty()
    }

    /// A snapshot of all registered threads.
    pub fn snapshot(&self) -> Vec<Arc<ThreadCtx>> {
        self.threads.read().clone()
    }

    /// Looks up a thread by id (used by the HTM simulator to deliver
    /// conflict aborts).
    pub fn get(&self, id: ThreadId) -> Option<Arc<ThreadCtx>> {
        self.threads.read().get(id).cloned()
    }

    /// Runs `f` for every registered thread other than `me`.
    pub fn for_each_other<F: FnMut(&ThreadCtx)>(&self, me: ThreadId, mut f: F) {
        for t in self.threads.read().iter() {
            if t.id != me {
                f(t);
            }
        }
    }

    /// Aggregated statistics across all threads.
    pub fn aggregate_stats(&self) -> crate::stats::StatsSnapshot {
        self.threads
            .read()
            .iter()
            .map(|t| t.stats.snapshot())
            .fold(crate::stats::StatsSnapshot::default(), |a, b| a.merge(&b))
    }

    /// Resets every thread's statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        for t in self.threads.read().iter() {
            t.stats.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TxStats;

    #[test]
    fn registration_assigns_dense_ids() {
        let r = ThreadRegistry::new();
        let a = r.register();
        let b = r.register();
        let c = r.register();
        assert_eq!((a.id, b.id, c.id), (0, 1, 2));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn start_time_defaults_to_not_in_tx() {
        let r = ThreadRegistry::new();
        let t = r.register();
        assert_eq!(t.published_start(), NOT_IN_TX);
        t.enter_tx(42);
        assert_eq!(t.published_start(), 42);
        t.exit_tx();
        assert_eq!(t.published_start(), NOT_IN_TX);
    }

    #[test]
    fn doom_flag_is_sticky_until_taken() {
        let r = ThreadRegistry::new();
        let t = r.register();
        assert!(!t.is_doomed());
        t.doom();
        assert!(t.is_doomed());
        assert!(t.take_doomed());
        assert!(!t.is_doomed());
        assert!(!t.take_doomed());
    }

    #[test]
    fn for_each_other_skips_self() {
        let r = ThreadRegistry::new();
        let me = r.register();
        let _a = r.register();
        let _b = r.register();
        let mut seen = Vec::new();
        r.for_each_other(me.id, |t| seen.push(t.id));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn pool_round_trip_counts_reuses_and_high_water_marks() {
        use crate::addr::Addr;
        let r = ThreadRegistry::new();
        let t = r.register();

        let mut reads = t.take_read_set();
        let mut log = t.take_write_log();
        assert_eq!(
            t.stats.snapshot().log_pool_reuses,
            0,
            "first takes are fresh"
        );
        for i in 0..10 {
            reads.record(Addr(i), i);
        }
        log.record(Addr(1), 1, || 0);
        log.record(Addr(2), 2, || 0);
        t.put_read_set(reads);
        t.put_write_log(log);

        let snap = t.stats.snapshot();
        assert_eq!(snap.read_set_max, 10);
        assert_eq!(snap.write_set_max, 2);

        let reads = t.take_read_set();
        let log = t.take_write_log();
        assert!(reads.is_empty() && log.is_empty());
        assert_eq!(t.stats.snapshot().log_pool_reuses, 2);
    }

    #[test]
    fn aggregate_and_reset_stats() {
        let r = ThreadRegistry::new();
        let a = r.register();
        let b = r.register();
        TxStats::bump(&a.stats.sw_commits);
        TxStats::bump(&b.stats.sw_commits);
        TxStats::bump(&b.stats.sleeps);
        let agg = r.aggregate_stats();
        assert_eq!(agg.sw_commits, 2);
        assert_eq!(agg.sleeps, 1);
        r.reset_stats();
        assert_eq!(r.aggregate_stats().sw_commits, 0);
    }
}
