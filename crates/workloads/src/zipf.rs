//! Deterministic Zipfian key generator.
//!
//! Session-store traffic is famously skewed — a few hot keys absorb most of
//! the requests — and the perf claims of the snapshot read path and the
//! stripe-aligned map layout are only meaningful under that skew.  This
//! generator produces Zipf(`theta`)-distributed key indices from a seeded
//! xorshift64\* stream: **no `rand` dependency, no host entropy**, so a
//! given `(keys, theta, seed)` triple yields the same key sequence on every
//! machine and every runtime — which is what lets the parity tests replay
//! identical histories and the benches publish reproducible cells.
//!
//! Sampling inverts the precomputed CDF with a binary search
//! (`partition_point`), exactly like the `read_mostly` bench's inline
//! generator, of which this is the shared, unit-tested extraction.

/// A seeded Zipfian sampler over key indices `0..keys`.
///
/// Rank 0 is the hottest key: `P(k) ∝ 1 / (k+1)^theta`.  `theta = 0`
/// degenerates to uniform; the classic YCSB skew is `theta = 0.99`.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    cdf: Vec<f64>,
    state: u64,
}

impl ZipfGen {
    /// Builds the CDF for `keys` keys with skew `theta`, seeding the
    /// xorshift stream with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn new(keys: usize, theta: f64, seed: u64) -> Self {
        assert!(keys > 0, "need at least one key");
        let mut cdf = Vec::with_capacity(keys);
        let mut total = 0.0f64;
        for k in 0..keys {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        ZipfGen {
            cdf,
            // xorshift fixes 0; force the state live for any seed.
            state: seed | 1,
        }
    }

    /// Number of keys in the sampled space.
    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// Next raw pseudo-random word (xorshift64\*).  Exposed so a workload
    /// can draw auxiliary decisions (op mix rolls) from the same stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.state = s;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next Zipf-distributed key index in `0..keys` (rank order: 0 is the
    /// hottest key).
    pub fn next_key(&mut self) -> usize {
        // 53 uniform mantissa bits, mapped through the CDF.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.keys() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_produces_the_golden_sequence() {
        // Locked down so any accidental change to the hash/CDF arithmetic —
        // which would silently invalidate every recorded bench cell — fails
        // loudly.  Values observed from the initial implementation.
        let mut g = ZipfGen::new(100, 0.99, 42);
        let got: Vec<usize> = (0..12).map(|_| g.next_key()).collect();
        let mut again = ZipfGen::new(100, 0.99, 42);
        let replay: Vec<usize> = (0..12).map(|_| again.next_key()).collect();
        assert_eq!(got, replay, "same seed, same sequence");
        assert_eq!(got, vec![29, 26, 58, 13, 44, 46, 46, 6, 0, 20, 1, 0]);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let a: Vec<usize> = {
            let mut g = ZipfGen::new(1000, 0.99, 1);
            (0..64).map(|_| g.next_key()).collect()
        };
        let b: Vec<usize> = {
            let mut g = ZipfGen::new(1000, 0.99, 2);
            (0..64).map(|_| g.next_key()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn head_key_frequency_tracks_theta() {
        // With n keys, P(key 0) = 1 / H_{n,theta}.  Check the empirical head
        // frequency against the analytic value within a tolerance that a
        // 64k-draw sample comfortably meets — this is the distribution
        // sanity gate, not a statistics paper.
        for &(theta, n) in &[(0.99f64, 100usize), (0.6, 100), (0.0, 16)] {
            let expected = {
                let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).sum();
                1.0 / h
            };
            let mut g = ZipfGen::new(n, theta, 7);
            let draws = 65_536;
            let head = (0..draws).filter(|_| g.next_key() == 0).count();
            let freq = head as f64 / draws as f64;
            assert!(
                (freq - expected).abs() < 0.01,
                "theta={theta} n={n}: head frequency {freq:.4} vs analytic {expected:.4}"
            );
        }
    }

    #[test]
    fn samples_stay_in_range_and_cover_the_space() {
        let n = 32;
        let mut g = ZipfGen::new(n, 0.99, 3);
        let mut seen = vec![false; n];
        for _ in 0..20_000 {
            let k = g.next_key();
            assert!(k < n);
            seen[k] = true;
        }
        // Even the coldest keys of a 32-key space appear in 20k skewed draws.
        assert!(seen.iter().all(|&s| s), "some key never sampled");
    }
}
