//! A minimal JSON tree, writer and parser.
//!
//! The build environment has no access to crates.io, so the report records
//! cannot use `serde_json`.  This module implements the small subset the
//! harness needs: a [`Value`] tree, a pretty printer whose output is stable
//! enough to diff, and a recursive-descent parser for reading reports back.
//! Object insertion order is preserved so round trips are byte-stable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but returns a parse error naming the key.
    pub fn require(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing key `{key}`")))
    }

    /// Renders the value as indented ("pretty") JSON.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced when parsing or interpreting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the error, when produced by the parser.
    offset: Option<usize>,
}

impl JsonError {
    /// An error with no position information (semantic errors).
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: Some(self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!("inner loop stops at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3", "2.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.pretty()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Value::obj(vec![
            ("name", Value::Str("fig2.3".into())),
            ("xs", Value::Arr(vec![Value::Num(4.0), Value::Num(16.0)])),
            (
                "inner",
                Value::obj(vec![("ok", Value::Bool(true)), ("none", Value::Null)]),
            ),
        ]);
        let text = v.pretty();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert!(text.contains("\"name\": \"fig2.3\""));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Value::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).pretty(), "42");
        assert_eq!(Value::Num(0.5).pretty(), "0.5");
    }

    #[test]
    fn f64_precision_survives() {
        let x = 0.123_456_789_012_345_67_f64;
        let v = Value::parse(&Value::Num(x).pretty()).unwrap();
        assert_eq!(v.as_f64().unwrap(), x);
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(7.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = Value::parse("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn object_lookup_helpers() {
        let v = Value::obj(vec![("k", Value::Num(1.0))]);
        assert_eq!(v.require("k").unwrap().as_u64(), Some(1));
        assert!(v.require("missing").is_err());
        assert!(v.get("missing").is_none());
    }
}
