//! `kv_store` — a session-store scenario over the transactional KV plane.
//!
//! N client sessions hammer a shared [`TmHashMap`] (primary store) and
//! [`TmOrderedMap`] (ordered index) with a configurable get/put/delete/scan
//! mix over Zipf-skewed keys ([`ZipfGen`]); every mutation updates store
//! and index in **one transaction**, so the two structures can never be
//! observed disagreeing.  Lookups and scans run as declared read-only
//! transactions (`atomically_read`), which is what routes them onto the
//! snapshot fast path.
//!
//! Flow control is the bounded-mailbox shape real ingest pipelines use: a
//! dispatcher thread feeds work grants through a [`TmBoundedBuffer`] with
//! the timed condsync operations, each grant entitling a session to one
//! batch of operations; a session that finds the mailbox empty rides out
//! the deadline as a counted timeout instead of spinning.
//!
//! Every operation is tagged with its [`OpClass`] on the session's thread
//! context before it runs, so the driver's commit-latency histograms split
//! by operation class and reports show p50/p99/p999 per get/put/delete/scan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use condsync::Mechanism;
use tm_core::{OpClass, StatsSnapshot, TmConfig};
use tm_sync::{MapLayout, TmBoundedBuffer, TmHashMap, TmOrderedMap};

use crate::runtime::RuntimeKind;
use crate::zipf::ZipfGen;

/// Parameters of one session-store run.
#[derive(Copy, Clone, Debug)]
pub struct KvParams {
    /// Number of client-session threads.
    pub sessions: usize,
    /// Operations each session performs.
    pub ops_per_session: u64,
    /// Number of distinct keys (Zipf rank space).
    pub keyspace: usize,
    /// Zipfian skew (0 = uniform, 0.99 = classic YCSB hot-spot).
    pub theta: f64,
    /// Percentage of operations that are point lookups.
    pub read_pct: u32,
    /// Percentage that are range scans over the ordered index.
    pub scan_pct: u32,
    /// Percentage that are deletes (the remainder are puts).
    pub delete_pct: u32,
    /// A scan covers keys `[k, k + scan_span]` in encoded order.
    pub scan_span: u64,
    /// Hash-map slot capacity (must exceed `keyspace`).
    pub map_capacity: usize,
    /// Memory layout of the hash map.
    pub layout: MapLayout,
    /// Entries pre-loaded before the clients start (setup is
    /// non-transactional, so a 100%-read run's stats are pure lookups).
    pub prepopulate: usize,
    /// Mailbox (work-grant buffer) capacity.
    pub mailbox_cap: usize,
    /// Operations granted per mailbox message.
    pub grant_batch: u64,
    /// Deadline of each mailbox produce/consume attempt.
    pub op_timeout: Duration,
    /// Base seed; each session derives its own deterministic stream.
    pub seed: u64,
}

impl KvParams {
    /// A small configuration suitable for unit tests and CI smoke runs.
    pub fn smoke() -> Self {
        KvParams {
            sessions: 3,
            ops_per_session: 240,
            keyspace: 48,
            theta: 0.99,
            read_pct: 70,
            scan_pct: 10,
            delete_pct: 8,
            scan_span: 7,
            map_capacity: 128,
            layout: MapLayout::StripeAligned,
            prepopulate: 24,
            mailbox_cap: 4,
            grant_batch: 16,
            op_timeout: Duration::from_millis(5),
            seed: 0x0005_E551_04B5,
        }
    }

    fn roll_bounds(&self) -> (u32, u32, u32) {
        let scans_end = self.read_pct + self.scan_pct;
        let deletes_end = scans_end + self.delete_pct;
        assert!(deletes_end <= 100, "op mix exceeds 100%");
        (self.read_pct, scans_end, deletes_end)
    }
}

/// Result of one session-store run.
#[derive(Debug, Clone)]
pub struct KvResult {
    /// The runtime that executed the transactions.
    pub runtime: RuntimeKind,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Point lookups performed / how many found their key.
    pub gets: u64,
    /// Lookups that found their key.
    pub get_hits: u64,
    /// Puts performed.
    pub puts: u64,
    /// Puts that inserted a fresh key (rather than overwriting).
    pub inserts_new: u64,
    /// Deletes performed.
    pub deletes: u64,
    /// Deletes that removed a present key.
    pub delete_hits: u64,
    /// Range scans performed.
    pub scans: u64,
    /// Total entries returned by scans.
    pub scanned_entries: u64,
    /// Mailbox consume deadlines that fired.
    pub mailbox_timeouts: u64,
    /// Final entry count of the store.
    pub final_len: u64,
    /// Conservation: `prepopulate + inserts_new - delete_hits == final_len`,
    /// and the hash map and ordered index hold identical contents.
    pub conservation_ok: bool,
    /// Commutative (order-independent) checksum over every value observed
    /// by gets and scans plus the final contents — deterministic for a
    /// deterministic schedule, reported for cross-run comparison.
    pub checksum: u64,
    /// Aggregated transaction statistics across all threads.
    pub stats: StatsSnapshot,
}

/// Runs one session-store scenario on `kind` with `config`.
///
/// # Panics
///
/// Panics on nonsensical parameters (empty keyspace, map smaller than the
/// keyspace, op mix above 100%).
pub fn run_kv_store_scenario(kind: RuntimeKind, config: TmConfig, params: &KvParams) -> KvResult {
    assert!(params.sessions > 0, "need at least one session");
    assert!(params.keyspace > 0, "need a non-empty keyspace");
    assert!(
        params.map_capacity > params.keyspace,
        "map capacity must exceed the keyspace (no resizing)"
    );
    let (read_end, scan_end, delete_end) = params.roll_bounds();

    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let store = Arc::new(TmHashMap::<u64, u64>::with_layout(
        &system,
        params.map_capacity,
        params.layout,
    ));
    let index = Arc::new(TmOrderedMap::<u64, u64>::new(&system));
    let mailbox = TmBoundedBuffer::new(&system, params.mailbox_cap.max(2));

    // Non-transactional prepopulation: a pure-read run's statistics stay
    // pure (no setup writes in `read_set_max` or the commit counts).
    for k in 0..params.prepopulate.min(params.keyspace) {
        let key = k as u64;
        store.insert_direct(&system, key, key + 1);
        index.insert_direct(&system, key, key + 1);
    }

    let gets = Arc::new(AtomicU64::new(0));
    let get_hits = Arc::new(AtomicU64::new(0));
    let puts = Arc::new(AtomicU64::new(0));
    let inserts_new = Arc::new(AtomicU64::new(0));
    let deletes = Arc::new(AtomicU64::new(0));
    let delete_hits = Arc::new(AtomicU64::new(0));
    let scans = Arc::new(AtomicU64::new(0));
    let scanned_entries = Arc::new(AtomicU64::new(0));
    let mailbox_timeouts = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    let grants_per_session = params.ops_per_session.div_ceil(params.grant_batch.max(1));
    let total_grants = grants_per_session * params.sessions as u64;

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Dispatcher: feeds work grants through the bounded mailbox with
        // timed produces (a full mailbox is backpressure, not a stall).
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let mailbox = Arc::clone(&mailbox);
            scope.spawn(move || {
                let th = system.register_thread();
                for g in 0..total_grants {
                    loop {
                        let stored = rt.atomically(&th, |tx| {
                            mailbox.produce_timeout(Mechanism::Await, tx, g + 1, params.op_timeout)
                        });
                        if stored {
                            break;
                        }
                    }
                }
            });
        }

        for session in 0..params.sessions {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let store = Arc::clone(&store);
            let index = Arc::clone(&index);
            let mailbox = Arc::clone(&mailbox);
            let gets = Arc::clone(&gets);
            let get_hits = Arc::clone(&get_hits);
            let puts = Arc::clone(&puts);
            let inserts_new = Arc::clone(&inserts_new);
            let deletes = Arc::clone(&deletes);
            let delete_hits = Arc::clone(&delete_hits);
            let scans = Arc::clone(&scans);
            let scanned_entries = Arc::clone(&scanned_entries);
            let mailbox_timeouts = Arc::clone(&mailbox_timeouts);
            let checksum = Arc::clone(&checksum);
            scope.spawn(move || {
                let th = system.register_thread();
                let mut rng = ZipfGen::new(
                    params.keyspace,
                    params.theta,
                    params.seed ^ ((session as u64 + 1) << 20),
                );
                let mut local_checksum = 0u64;
                let mut done = 0u64;
                while done < params.ops_per_session {
                    // Acquire a work grant; deadline misses are counted and
                    // retried (flow control, not failure).
                    loop {
                        let got = rt.atomically(&th, |tx| {
                            mailbox.consume_timeout(Mechanism::Await, tx, params.op_timeout)
                        });
                        if got.is_some() {
                            break;
                        }
                        mailbox_timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    let batch = params.grant_batch.min(params.ops_per_session - done);
                    for op in 0..batch {
                        let key = rng.next_key() as u64;
                        let roll = (rng.next_u64() >> 32) as u32 % 100;
                        if roll < read_end {
                            th.set_op_class(OpClass::Get);
                            let got = rt.atomically_read(&th, |tx| store.get(tx, key));
                            th.clear_op_class();
                            gets.fetch_add(1, Ordering::Relaxed);
                            if let Some(v) = got {
                                get_hits.fetch_add(1, Ordering::Relaxed);
                                local_checksum = local_checksum.wrapping_add(v);
                            }
                        } else if roll < scan_end {
                            th.set_op_class(OpClass::Scan);
                            let hi = key.saturating_add(params.scan_span);
                            let entries = rt.atomically_read(&th, |tx| index.range(tx, key, hi));
                            th.clear_op_class();
                            scans.fetch_add(1, Ordering::Relaxed);
                            scanned_entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
                            for (_, v) in entries {
                                local_checksum = local_checksum.wrapping_add(v);
                            }
                        } else if roll < delete_end {
                            th.set_op_class(OpClass::Delete);
                            let old = rt.atomically(&th, |tx| {
                                let old = store.remove(tx, key)?;
                                if old.is_some() {
                                    index.remove(tx, key)?;
                                }
                                Ok(old)
                            });
                            th.clear_op_class();
                            deletes.fetch_add(1, Ordering::Relaxed);
                            if old.is_some() {
                                delete_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            th.set_op_class(OpClass::Put);
                            let value = ((session as u64 + 1) << 32) | (done + op);
                            let old = rt.atomically(&th, |tx| {
                                let old = store.insert(tx, key, value)?;
                                index.insert(tx, key, value)?;
                                Ok(old)
                            });
                            th.clear_op_class();
                            puts.fetch_add(1, Ordering::Relaxed);
                            if old.is_none() {
                                inserts_new.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    done += batch;
                }
                checksum.fetch_add(local_checksum, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    // Conservation: the store's size is exactly what the successful
    // structural operations say it is, and the index agrees entry-for-entry.
    let final_len = store.len_direct(&system);
    let expected_len = params.prepopulate.min(params.keyspace) as u64
        + inserts_new.load(Ordering::Relaxed)
        - delete_hits.load(Ordering::Relaxed);
    let store_dump = store.dump_direct(&system);
    let index_dump = index.dump_direct(&system);
    let conservation_ok = final_len == expected_len
        && store_dump.len() as u64 == final_len
        && store_dump == index_dump;
    let final_checksum = store_dump
        .iter()
        .fold(checksum.load(Ordering::Relaxed), |acc, &(k, v)| {
            acc.wrapping_add(k ^ v)
        });

    KvResult {
        runtime: kind,
        elapsed,
        gets: gets.load(Ordering::Relaxed),
        get_hits: get_hits.load(Ordering::Relaxed),
        puts: puts.load(Ordering::Relaxed),
        inserts_new: inserts_new.load(Ordering::Relaxed),
        deletes: deletes.load(Ordering::Relaxed),
        delete_hits: delete_hits.load(Ordering::Relaxed),
        scans: scans.load(Ordering::Relaxed),
        scanned_entries: scanned_entries.load(Ordering::Relaxed),
        mailbox_timeouts: mailbox_timeouts.load(Ordering::Relaxed),
        final_len,
        conservation_ok,
        checksum: final_checksum,
        stats: system.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_conserves_and_classifies_on_every_runtime() {
        for kind in RuntimeKind::ALL {
            let params = KvParams::smoke();
            let r = run_kv_store_scenario(kind, TmConfig::small(), &params);
            assert!(r.conservation_ok, "{kind}: store/index disagree");
            assert_eq!(
                r.gets + r.puts + r.deletes + r.scans,
                params.ops_per_session * params.sessions as u64,
                "{kind}: op accounting"
            );
            // Every operation's latency landed in its class histogram —
            // the routing is exact, not approximate.
            assert_eq!(r.stats.op_latency(OpClass::Get).count(), r.gets, "{kind}");
            assert_eq!(r.stats.op_latency(OpClass::Put).count(), r.puts, "{kind}");
            assert_eq!(
                r.stats.op_latency(OpClass::Delete).count(),
                r.deletes,
                "{kind}"
            );
            assert_eq!(r.stats.op_latency(OpClass::Scan).count(), r.scans, "{kind}");
            // Zipf skew + prepopulation make read hits overwhelmingly likely
            // (the head keys are preloaded).
            assert!(r.get_hits > 0, "{kind}: no get ever hit");
            assert!(r.scanned_entries > 0, "{kind}: scans saw nothing");
        }
    }

    #[test]
    fn declared_ro_lookups_take_the_snapshot_fast_path() {
        // 100% reads on a prepopulated store: with SnapshotMode::On the STM
        // lookups commit with a zero footprint.
        let params = KvParams {
            read_pct: 100,
            scan_pct: 0,
            delete_pct: 0,
            ..KvParams::smoke()
        };
        for kind in [RuntimeKind::EagerStm, RuntimeKind::LazyStm] {
            let r = run_kv_store_scenario(kind, TmConfig::small(), &params);
            assert!(r.conservation_ok);
            // Every lookup commits through the zero-footprint fast path.
            // (`read_set_max` is not zero here only because the mailbox's
            // flow-control transactions read; the mailbox-free bench pins
            // that stricter claim.)
            assert_eq!(
                r.stats.ro_fast_commits, r.gets,
                "{kind}: some lookup missed the snapshot fast path"
            );
            assert_eq!(r.final_len, params.prepopulate as u64);
        }
    }

    #[test]
    fn identical_seeds_replay_identical_histories_per_runtime() {
        // Single-session runs are fully deterministic: same seed, same
        // final state and checksum — on every runtime and layout.
        let mut checksums = Vec::new();
        for kind in RuntimeKind::ALL {
            for layout in MapLayout::ALL {
                let params = KvParams {
                    sessions: 1,
                    layout,
                    ..KvParams::smoke()
                };
                let a = run_kv_store_scenario(kind, TmConfig::small(), &params);
                let b = run_kv_store_scenario(kind, TmConfig::small(), &params);
                assert_eq!(a.checksum, b.checksum, "{kind}/{layout:?}: not replayable");
                assert_eq!(a.final_len, b.final_len);
                checksums.push(a.checksum);
            }
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "single-session history must be runtime- and layout-independent: {checksums:?}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 100%")]
    fn over_100_percent_mixes_are_rejected() {
        let params = KvParams {
            read_pct: 80,
            scan_pct: 20,
            delete_pct: 10,
            ..KvParams::smoke()
        };
        let _ = run_kv_store_scenario(RuntimeKind::EagerStm, TmConfig::small(), &params);
    }
}
