//! `timeout_scenarios` — workloads for timed and cancellable waiting.
//!
//! The paper's evaluation only exercises unbounded blocking; this family
//! covers the workload class the timed waits of `condsync` open up:
//!
//! * **lossy consumers** — consumers poll a bounded buffer with
//!   [`TmBoundedBuffer::consume_timeout`] and give up after a run of
//!   timeouts instead of stalling forever,
//! * **deadline-bounded pipelines** — producers stall periodically
//!   (simulating a slow upstream stage), and consumers ride out the stalls
//!   as timeouts rather than blocked threads.
//!
//! One scenario shape covers both: `p` producers push `total_items` into a
//! bounded buffer, sleeping for [`TimeoutParams::stall`] after every
//! [`TimeoutParams::stall_every`] items (and once before the first item, so
//! a consumer-side timeout is observed even on fast machines); `c` consumers
//! drain the buffer with `consume_timeout(op_timeout)`, counting how often
//! the deadline fired, and optionally giving up after
//! [`TimeoutParams::give_up_after`] consecutive timeouts.  Conservation is
//! checked the same way the producer/consumer benchmark does: the sum of
//! consumed values must equal the sum of produced values when everything is
//! drained.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use condsync::Mechanism;
use tm_core::{StatsSnapshot, TmConfig};
use tm_sync::TmBoundedBuffer;

use crate::runtime::RuntimeKind;

/// Parameters of one timed-wait scenario.
#[derive(Copy, Clone, Debug)]
pub struct TimeoutParams {
    /// Number of producer threads (0 makes the scenario pure give-up: every
    /// consumer times out until it abandons the wait).
    pub producers: usize,
    /// Number of consumer threads.
    pub consumers: usize,
    /// Bounded-buffer capacity.
    pub buffer_size: usize,
    /// Total items produced (split across producers, remainder to the
    /// first ones).
    pub total_items: u64,
    /// The condition-synchronization mechanism used for every wait.  Must be
    /// deschedule-based (`Retry`, `Await` or `WaitPred`): the others have no
    /// timed variants.
    pub mechanism: Mechanism,
    /// Deadline of each individual `consume_timeout` call.
    pub op_timeout: Duration,
    /// Producers sleep after every this-many items (0 = only the initial
    /// stall).
    pub stall_every: u64,
    /// How long each producer stall lasts.
    pub stall: Duration,
    /// Consecutive timeouts after which a consumer abandons the drain
    /// (0 = never give up; requires producers > 0 to terminate).
    pub give_up_after: u32,
}

impl TimeoutParams {
    /// A small configuration suitable for unit tests and CI smoke runs.
    pub fn smoke(mechanism: Mechanism) -> Self {
        TimeoutParams {
            producers: 1,
            consumers: 2,
            buffer_size: 4,
            total_items: 64,
            mechanism,
            op_timeout: Duration::from_millis(5),
            stall_every: 16,
            stall: Duration::from_millis(25),
            give_up_after: 0,
        }
    }

    /// The items producer `i` of `producers` is responsible for (0 when the
    /// scenario has no producers).
    pub fn items_for_producer(&self, i: usize) -> u64 {
        let p = self.producers as u64;
        if p == 0 {
            return 0;
        }
        let base = self.total_items / p;
        let extra = u64::from((i as u64) < self.total_items % p);
        base + extra
    }
}

/// Result of one timed-wait scenario run.
#[derive(Debug, Clone)]
pub struct TimeoutResult {
    /// The parameters that produced this result.
    pub params: TimeoutParams,
    /// The runtime that executed the transactions.
    pub runtime: RuntimeKind,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Items actually produced.
    pub produced: u64,
    /// Items actually consumed (≤ produced; less when consumers gave up).
    pub consumed: u64,
    /// `consume_timeout` calls that returned `None` (deadline fired).
    pub timeouts: u64,
    /// Conservation check, meaningful in *every* outcome (including give-up
    /// runs): the sum of consumed values plus the values left in the buffer
    /// equals the sum of produced values.
    pub checksum_ok: bool,
    /// Aggregated transaction statistics across all threads.
    pub stats: StatsSnapshot,
}

/// Runs one timed-wait scenario on `kind`.
///
/// # Panics
///
/// Panics if the mechanism is not deschedule-based, or if `producers == 0`
/// while `give_up_after == 0` (the scenario could never terminate).
pub fn run_timeout_scenario(kind: RuntimeKind, params: TimeoutParams) -> TimeoutResult {
    assert!(
        params.mechanism.is_deschedule_based(),
        "timed waits require a deschedule-based mechanism, got {}",
        params.mechanism
    );
    assert!(
        params.producers > 0 || params.give_up_after > 0,
        "no producers and no give-up bound: the consumers would wait forever"
    );
    assert!(params.consumers > 0, "need at least one consumer");

    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let buf = TmBoundedBuffer::new(&system, params.buffer_size.max(2));

    let produced = Arc::new(AtomicU64::new(0));
    let produced_sum = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let consumed_sum = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    // Producers check this so they never block forever on a full buffer
    // after every consumer has given up.
    let consumers_active = Arc::new(AtomicU64::new(params.consumers as u64));

    let start = Instant::now();
    let mut handles = Vec::new();

    let mut next_value = 1u64;
    for i in 0..params.producers {
        let n = params.items_for_producer(i);
        let first = next_value;
        next_value += n;
        let rt = rt.clone();
        let system = Arc::clone(&system);
        let buf = Arc::clone(&buf);
        let produced = Arc::clone(&produced);
        let produced_sum = Arc::clone(&produced_sum);
        let consumers_active = Arc::clone(&consumers_active);
        handles.push(std::thread::spawn(move || {
            let th = system.register_thread();
            // Initial stall: consumers racing ahead of the pipeline see at
            // least one deadline fire.
            std::thread::sleep(params.stall);
            'items: for k in 0..n {
                if params.stall_every > 0 && k > 0 && k % params.stall_every == 0 {
                    std::thread::sleep(params.stall);
                }
                // Timed produce in a loop: if the buffer stays full and no
                // consumer is left to drain it, abandon the remaining items
                // instead of blocking forever.
                loop {
                    let stored = rt.atomically(&th, |tx| {
                        buf.produce_timeout(params.mechanism, tx, first + k, params.op_timeout)
                    });
                    if stored {
                        produced.fetch_add(1, Ordering::AcqRel);
                        produced_sum.fetch_add(first + k, Ordering::Relaxed);
                        break;
                    }
                    if consumers_active.load(Ordering::Acquire) == 0 {
                        break 'items;
                    }
                }
            }
        }));
    }

    for _ in 0..params.consumers {
        let rt = rt.clone();
        let system = Arc::clone(&system);
        let buf = Arc::clone(&buf);
        let consumed = Arc::clone(&consumed);
        let consumed_sum = Arc::clone(&consumed_sum);
        let timeouts = Arc::clone(&timeouts);
        let consumers_active = Arc::clone(&consumers_active);
        handles.push(std::thread::spawn(move || {
            let th = system.register_thread();
            let mut consecutive_timeouts = 0u32;
            // The target is the *requested* total: in a producerless
            // scenario the items never come and the give-up bound is what
            // ends the drain.
            while consumed.load(Ordering::Acquire) < params.total_items {
                let got = rt.atomically(&th, |tx| {
                    buf.consume_timeout(params.mechanism, tx, params.op_timeout)
                });
                match got {
                    Some(v) => {
                        consecutive_timeouts = 0;
                        consumed.fetch_add(1, Ordering::AcqRel);
                        consumed_sum.fetch_add(v, Ordering::Relaxed);
                    }
                    None => {
                        timeouts.fetch_add(1, Ordering::Relaxed);
                        consecutive_timeouts += 1;
                        if params.give_up_after > 0 && consecutive_timeouts >= params.give_up_after
                        {
                            break;
                        }
                    }
                }
            }
            consumers_active.fetch_sub(1, Ordering::AcqRel);
        }));
    }

    for h in handles {
        h.join().expect("scenario thread panicked");
    }
    let elapsed = start.elapsed();

    // Conservation: whatever was produced is either consumed or still in the
    // buffer — in every outcome, including give-up runs.
    let th = system.register_thread();
    let mut leftover_sum = 0u64;
    while let Some(v) = rt.atomically(&th, |tx| {
        if buf.empty(tx)? {
            Ok(None)
        } else {
            buf.get(tx).map(Some)
        }
    }) {
        leftover_sum += v;
    }

    TimeoutResult {
        params,
        runtime: kind,
        elapsed,
        produced: produced.load(Ordering::Acquire),
        consumed: consumed.load(Ordering::Acquire),
        timeouts: timeouts.load(Ordering::Relaxed),
        checksum_ok: consumed_sum.load(Ordering::Relaxed) + leftover_sum
            == produced_sum.load(Ordering::Relaxed),
        stats: system.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_drains_and_observes_timeouts_on_every_runtime() {
        for kind in RuntimeKind::ALL {
            for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
                let r = run_timeout_scenario(kind, TimeoutParams::smoke(mechanism));
                assert_eq!(r.consumed, r.produced, "{kind}/{mechanism}: not drained");
                assert!(r.checksum_ok, "{kind}/{mechanism}: checksum");
                // Every observed `None` required a timeout-ended wait, but a
                // wait can also time out and still succeed on re-execution
                // (late success wins), so the runtime's count may be larger.
                assert!(
                    r.stats.wake_timeouts >= r.timeouts,
                    "{kind}/{mechanism}: runtime timeout count ({}) < observed Nones ({})",
                    r.stats.wake_timeouts,
                    r.timeouts
                );
                assert!(
                    r.timeouts > 0,
                    "{kind}/{mechanism}: the initial producer stall must \
                     surface at least one consumer-side timeout"
                );
            }
        }
    }

    #[test]
    fn give_up_bound_terminates_a_producerless_scenario() {
        let params = TimeoutParams {
            producers: 0,
            consumers: 2,
            total_items: 10,
            give_up_after: 3,
            op_timeout: Duration::from_millis(5),
            ..TimeoutParams::smoke(Mechanism::Retry)
        };
        let r = run_timeout_scenario(RuntimeKind::EagerStm, params);
        assert_eq!(r.produced, 0);
        assert_eq!(r.consumed, 0);
        assert_eq!(
            r.timeouts,
            2 * 3,
            "each consumer gives up after exactly its bound"
        );
        assert!(r.checksum_ok);
        assert_eq!(r.stats.wake_timeouts, r.timeouts);
    }

    #[test]
    fn producers_abandon_when_every_consumer_gives_up() {
        // Regression: this combination used to deadlock — the consumer gives
        // up during the producer's long initial stall, and the producer
        // (previously using an unbounded produce) then blocked forever on
        // the full buffer with nobody left to drain it.
        let params = TimeoutParams {
            producers: 1,
            consumers: 1,
            buffer_size: 4,
            total_items: 64,
            give_up_after: 2,
            op_timeout: Duration::from_millis(5),
            stall: Duration::from_millis(200),
            ..TimeoutParams::smoke(Mechanism::Retry)
        };
        let r = run_timeout_scenario(RuntimeKind::EagerStm, params);
        assert!(r.checksum_ok, "conservation must hold for abandoned runs");
        assert!(
            r.produced <= params.buffer_size as u64 + 1,
            "producer must abandon soon after the buffer fills (produced {})",
            r.produced
        );
        assert!(r.consumed <= r.produced);
        assert!(r.timeouts >= 2, "the consumer's give-up path was exercised");
    }

    #[test]
    fn producer_split_covers_the_total() {
        let p = TimeoutParams {
            producers: 3,
            total_items: 10,
            ..TimeoutParams::smoke(Mechanism::Await)
        };
        let split: Vec<u64> = (0..3).map(|i| p.items_for_producer(i)).collect();
        assert_eq!(split.iter().sum::<u64>(), 10);
        assert_eq!(split, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "deschedule-based")]
    fn non_deschedule_mechanisms_are_rejected() {
        let _ = run_timeout_scenario(
            RuntimeKind::EagerStm,
            TimeoutParams::smoke(Mechanism::Restart),
        );
    }

    #[test]
    #[should_panic(expected = "wait forever")]
    fn unterminable_configurations_are_rejected() {
        let params = TimeoutParams {
            producers: 0,
            give_up_after: 0,
            ..TimeoutParams::smoke(Mechanism::Retry)
        };
        let _ = run_timeout_scenario(RuntimeKind::EagerStm, params);
    }
}
