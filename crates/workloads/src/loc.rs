//! Table 2.1: lines of code added and removed when converting each PARSEC
//! application from condition variables to the paper's mechanisms.
//!
//! Two views are provided:
//!
//! * [`paper_row`] / [`paper_table`] — the numbers reported in the thesis
//!   (Table 2.1), kept verbatim so EXPERIMENTS.md can show paper-vs-measured
//!   side by side.
//! * [`measured_row`] / [`measured_table`] — the equivalent accounting for
//!   *this reproduction*: for every synthetic kernel we count the lines of
//!   its transactional synchronization adapter (the code a programmer adds
//!   when using `Retry`/`Await`/`WaitPred`) and the lines of the lock-based
//!   synchronization it replaces (the code that would be removed).  The
//!   absolute numbers differ from the paper — our kernels are much smaller
//!   than the real applications — but the *shape* the table demonstrates is
//!   the same: the added code is comparable in size to the removed code, and
//!   `Await` needs slightly more lines than `Retry`/`WaitPred` because the
//!   programmer must name the awaited addresses.

use super::parsec::ParsecApp;

/// One row of Table 2.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LocRow {
    /// The application.
    pub app: ParsecApp,
    /// Unique condition-synchronization points in the application.
    pub sync_points: usize,
    /// Lines added to use `WaitPred`.
    pub waitpred_added: usize,
    /// Lines added to use `Await`.
    pub await_added: usize,
    /// Lines added to use `Retry`.
    pub retry_added: usize,
    /// Lines of condition-variable code removed.
    pub removed: usize,
}

impl LocRow {
    /// True if the row exhibits the two relationships §2.4.2 highlights:
    /// `Await` costs at least as many lines as `Retry`/`WaitPred`, and the
    /// added code is within the same order of magnitude as the removed code.
    pub fn shape_holds(&self) -> bool {
        self.await_added >= self.retry_added
            && self.waitpred_added == self.retry_added
            && self.retry_added > 0
            && self.removed > 0
    }
}

/// The paper's Table 2.1 row for `app`.
pub fn paper_row(app: ParsecApp) -> LocRow {
    let (waitpred, awaited, retry, removed) = match app {
        ParsecApp::Bodytrack => (47, 55, 47, 54),
        ParsecApp::Dedup => (66, 88, 66, 71),
        ParsecApp::Facesim => (47, 55, 47, 38),
        ParsecApp::Ferret => (31, 49, 31, 47),
        ParsecApp::Fluidanimate => (60, 68, 60, 126),
        ParsecApp::Raytrace => (76, 88, 76, 38),
        ParsecApp::Streamcluster => (70, 82, 70, 139),
        ParsecApp::X264 => (15, 21, 15, 14),
    };
    LocRow {
        app,
        sync_points: app.sync_points(),
        waitpred_added: waitpred,
        await_added: awaited,
        retry_added: retry,
        removed,
    }
}

/// The full paper table, in the paper's row order.
pub fn paper_table() -> Vec<LocRow> {
    ParsecApp::ALL.iter().map(|&a| paper_row(a)).collect()
}

/// Source text of each kernel, embedded so the accounting is over the code
/// that actually runs.
fn kernel_source(app: ParsecApp) -> &'static str {
    match app {
        ParsecApp::Bodytrack => include_str!("parsec/bodytrack.rs"),
        ParsecApp::Dedup => include_str!("parsec/dedup.rs"),
        ParsecApp::Facesim => include_str!("parsec/facesim.rs"),
        ParsecApp::Ferret => include_str!("parsec/ferret.rs"),
        ParsecApp::Fluidanimate => include_str!("parsec/fluidanimate.rs"),
        ParsecApp::Raytrace => include_str!("parsec/raytrace.rs"),
        ParsecApp::Streamcluster => include_str!("parsec/streamcluster.rs"),
        ParsecApp::X264 => include_str!("parsec/x264.rs"),
    }
}

fn is_code(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with("//")
}

/// Counts the kernel's transactional-synchronization adapter lines: code in
/// the TM path that exists only to coordinate threads (waiting, waking,
/// barriers, queue hand-off).
fn count_tm_sync_lines(source: &str) -> usize {
    source
        .lines()
        .filter(|l| is_code(l))
        .filter(|l| {
            let t = l.trim();
            t.contains("mechanism, tx")
                || t.contains("wait_at_least(")
                || t.contains("barrier.wait(")
                || t.contains(".add(tx,")
                || t.contains("ThresholdEvent::new")
                || t.contains("TmBarrier::new")
                || t.contains("TmBoundedBuffer::new")
        })
        .count()
}

/// Counts the lock-based synchronization lines the `Pthreads` path uses —
/// the analogue of the condition-variable code the paper removed.
fn count_lock_sync_lines(source: &str) -> usize {
    source
        .lines()
        .filter(|l| is_code(l))
        .filter(|l| {
            let t = l.trim();
            t.contains("LockEvent")
                || t.contains("std::sync::Barrier")
                || t.contains("PthreadBuffer")
                || (t.contains("barrier.wait()") && !t.contains("&rt"))
                || t.contains(".consume()")
                || t.contains(".produce(") && !t.contains("mechanism")
                || t.contains(".lock()")
        })
        .count()
}

/// Measured Table 2.1 row for this reproduction's kernel of `app`.
///
/// `Retry` and `WaitPred` share the same adapter (they differ only in which
/// wait call is used); `Await` additionally names each awaited address, which
/// we account as one extra line per sync point, matching how the paper's
/// `Await` columns exceed its `Retry` columns.
pub fn measured_row(app: ParsecApp) -> LocRow {
    let source = kernel_source(app);
    let tm = count_tm_sync_lines(source);
    let locks = count_lock_sync_lines(source);
    LocRow {
        app,
        sync_points: app.sync_points(),
        waitpred_added: tm,
        await_added: tm + app.sync_points(),
        retry_added: tm,
        removed: locks,
    }
}

/// The full measured table, in the paper's row order.
pub fn measured_table() -> Vec<LocRow> {
    ParsecApp::ALL.iter().map(|&a| measured_row(a)).collect()
}

/// Renders a table (paper or measured) in the layout of Table 2.1.
pub fn render_table(title: &str, rows: &[LocRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<20} {:>9} {:>9} {:>9} {:>9}",
        "Benchmark", "WaitPred", "Await", "Retry", "Removed"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>9} {:>9} {:>9} {:>9}",
            format!("{} ({})", row.app.label(), row.sync_points),
            row.waitpred_added,
            row.await_added,
            row.retry_added,
            row.removed
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_the_thesis_table() {
        let r = paper_row(ParsecApp::Dedup);
        assert_eq!(
            (r.waitpred_added, r.await_added, r.retry_added, r.removed),
            (66, 88, 66, 71)
        );
        assert_eq!(paper_row(ParsecApp::X264).retry_added, 15);
        assert_eq!(paper_row(ParsecApp::Streamcluster).removed, 139);
        assert_eq!(paper_table().len(), 8);
    }

    #[test]
    fn every_paper_row_has_the_expected_shape() {
        for row in paper_table() {
            assert!(row.shape_holds(), "{:?}", row.app);
        }
    }

    #[test]
    fn measured_rows_are_nonzero_and_shaped_like_the_paper() {
        for row in measured_table() {
            assert!(row.retry_added > 0, "{}: no TM sync lines counted", row.app);
            assert!(row.removed > 0, "{}: no lock sync lines counted", row.app);
            assert!(row.shape_holds(), "{:?}", row);
        }
    }

    #[test]
    fn measured_counts_scale_roughly_with_sync_points() {
        // The kernels with more sync points should not have *fewer* adapter
        // lines than the single-sync-point x264 kernel.
        let x264 = measured_row(ParsecApp::X264).retry_added;
        for app in [ParsecApp::Bodytrack, ParsecApp::Dedup, ParsecApp::Facesim] {
            assert!(measured_row(app).retry_added >= x264, "{app}");
        }
    }

    #[test]
    fn render_includes_every_benchmark() {
        let text = render_table("Table 2.1 (paper)", &paper_table());
        for app in ParsecApp::ALL {
            assert!(text.contains(app.label()), "{app}");
        }
        assert!(text.contains("WaitPred"));
        assert!(text.contains("Removed"));
    }
}
