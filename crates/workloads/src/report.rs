//! Result records and table rendering for the evaluation harness.
//!
//! Every figure binary produces a [`Report`]: a set of [`Series`] (one per
//! condition-synchronization mechanism), each containing measured
//! [`DataPoint`]s.  Reports can be rendered as the plain-text tables the
//! paper's figures plot, or serialized to JSON for post-processing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::json::{JsonError, Value};
use condsync::Mechanism;
use tm_core::{OpClass, StatsSnapshot};

/// One measured point: a configuration label (e.g. buffer size or thread
/// count) mapped to a wall-clock time and the runtime statistics gathered
/// during the trial.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// X-axis value (buffer size for Figures 2.3–2.5, thread count for
    /// Figures 2.6–2.8).
    pub x: u64,
    /// Mean wall-clock seconds over the trials.
    pub seconds: f64,
    /// Sample standard deviation of the per-trial seconds.
    pub stddev: f64,
    /// Number of trials averaged.
    pub trials: u32,
    /// Aggregated transaction statistics from the last trial.
    pub stats: StatsSnapshot,
}

impl DataPoint {
    /// Builds a point from raw per-trial durations.
    pub fn from_trials(x: u64, durations: &[Duration], stats: StatsSnapshot) -> Self {
        assert!(
            !durations.is_empty(),
            "a data point needs at least one trial"
        );
        let secs: Vec<f64> = durations.iter().map(Duration::as_secs_f64).collect();
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        let var = if secs.len() > 1 {
            secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (secs.len() - 1) as f64
        } else {
            0.0
        };
        DataPoint {
            x,
            seconds: mean,
            stddev: var.sqrt(),
            trials: secs.len() as u32,
            stats,
        }
    }
}

/// One line in a figure: a mechanism and its measured points.
#[derive(Debug, Clone)]
pub struct Series {
    /// The mechanism this series measures.
    pub mechanism: Mechanism,
    /// Measured points, ordered by `x`.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Creates an empty series for `mechanism`.
    pub fn new(mechanism: Mechanism) -> Self {
        Series {
            mechanism,
            points: Vec::new(),
        }
    }

    /// Adds a point, keeping the series ordered by `x`.
    pub fn push(&mut self, point: DataPoint) {
        self.points.push(point);
        self.points.sort_by_key(|p| p.x);
    }

    /// Looks up the point at `x`, if measured.
    pub fn at(&self, x: u64) -> Option<&DataPoint> {
        self.points.iter().find(|p| p.x == x)
    }
}

/// One panel of a figure (e.g. `p2-c4` in Figure 2.3, or one PARSEC app in
/// Figure 2.6): a set of series sharing the same x-axis.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel label (`"p2-c4"`, `"dedup"`, …).
    pub label: String,
    /// What the x-axis means (`"buffer size"`, `"# of threads"`).
    pub x_label: String,
    /// One series per mechanism.
    pub series: Vec<Series>,
}

impl Panel {
    /// Creates an empty panel.
    pub fn new(label: impl Into<String>, x_label: impl Into<String>) -> Self {
        Panel {
            label: label.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// The series for `mechanism`, creating it if absent.
    pub fn series_mut(&mut self, mechanism: Mechanism) -> &mut Series {
        if let Some(i) = self.series.iter().position(|s| s.mechanism == mechanism) {
            return &mut self.series[i];
        }
        self.series.push(Series::new(mechanism));
        self.series.last_mut().expect("just pushed")
    }

    /// All distinct x values across the panel's series, sorted.
    pub fn xs(&self) -> Vec<u64> {
        let mut xs: Vec<u64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// The mechanism with the smallest mean time at `x`, if any point exists.
    pub fn winner_at(&self, x: u64) -> Option<Mechanism> {
        self.series
            .iter()
            .filter_map(|s| s.at(x).map(|p| (s.mechanism, p.seconds)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are finite"))
            .map(|(m, _)| m)
    }

    /// Renders the panel as a fixed-width text table (x value per row, one
    /// column per mechanism), matching the rows the paper's plots encode,
    /// followed by the wake-path effectiveness lines when any series did
    /// wake work.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.label);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>12}", s.mechanism.label());
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{x:>14}");
            for s in &self.series {
                match s.at(x) {
                    Some(p) => {
                        let _ = write!(out, " {:>12.4}", p.seconds);
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out.push_str(&self.render_wake_stats());
        out.push_str(&self.render_access_stats());
        out.push_str(&self.render_mode_stats());
        out.push_str(&self.render_hw_plane_stats());
        out.push_str(&self.render_clock_stats());
        out.push_str(&self.render_snapshot_stats());
        out.push_str(&self.render_memory_plane_stats());
        out.push_str(&self.render_latency_stats());
        out
    }

    /// One line per mechanism summarising targeted-wake effectiveness:
    /// waiters whose conditions were evaluated versus registry shards the
    /// writer never had to visit, plus the timed-wait counters (deadline
    /// expiries, cancellations, lazy timer-wheel ticks).  Empty when the
    /// panel did no wake work.
    pub fn render_wake_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.wake_checks == 0
                && stats.wake_shard_scans == 0
                && stats.wake_shard_skips == 0
                && stats.wake_timeouts == 0
                && stats.wake_cancels == 0
            {
                continue;
            }
            let _ = writeln!(
                out,
                "# wake-path {:>10}: waiters scanned {:>8}  wakeups {:>8}  shards scanned {:>8}  shards skipped {:>10}  targeted commits {:>8}  timeouts {:>8}  cancels {:>6}  timer ticks {:>8}",
                s.mechanism.label(),
                stats.wake_checks,
                stats.wakeups,
                stats.wake_shard_scans,
                stats.wake_shard_skips,
                stats.wake_targeted,
                stats.wake_timeouts,
                stats.wake_cancels,
                stats.timer_ticks,
            );
        }
        out
    }

    /// One line per mechanism summarising the mode ladder and contention
    /// policy: commits per rung (hardware / software / serial), mode
    /// switches, policy escalations, and the program-requested explicit
    /// aborts that the `Restart` baseline is built on (previously invisible
    /// in reports).  Empty when no series did any of that work.
    pub fn render_mode_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.serial_commits == 0
                && stats.mode_switches == 0
                && stats.cm_escalations == 0
                && stats.explicit_aborts == 0
            {
                continue;
            }
            let _ = writeln!(
                out,
                "# mode-ladder {:>10}: hw commits {:>8}  sw commits {:>8}  serial commits {:>8}  mode switches {:>8}  cm escalations {:>8}  explicit aborts {:>8}",
                s.mechanism.label(),
                stats.hw_commits,
                stats.sw_commits,
                stats.serial_commits,
                stats.mode_switches,
                stats.cm_escalations,
                stats.explicit_aborts,
            );
        }
        out
    }

    /// One line per mechanism summarising hardware-plane incidents: aborts
    /// manufactured by the fault-injection plane and TMCondVar watchdog
    /// re-deliveries, alongside the total hardware aborts they hide among.
    /// Empty when neither happened, so ordinary runs (injection off, no
    /// lost signals) render exactly as before.
    pub fn render_hw_plane_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.hw_faults_injected == 0 && stats.watchdog_redeliveries == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "# hardware-plane {:>10}: faults injected {:>8}  hw aborts {:>8}  watchdog redeliveries {:>8}",
                s.mechanism.label(),
                stats.hw_faults_injected,
                stats.hw_aborts,
                stats.watchdog_redeliveries,
            );
        }
        out
    }

    /// One line per mechanism summarising access-set behaviour: the largest
    /// read set and write log any attempt built (high-water marks, max-merged
    /// across threads) and how many pooled log containers were recycled
    /// instead of allocated.  Empty when no series recorded either.
    pub fn render_access_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.read_set_max == 0 && stats.write_set_max == 0 && stats.log_pool_reuses == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "# access-set {:>10}: read set max {:>8}  write set max {:>8}  pool reuses {:>10}",
                s.mechanism.label(),
                stats.read_set_max,
                stats.write_set_max,
                stats.log_pool_reuses,
            );
        }
        out
    }

    /// One line per mechanism summarising clock-plane contention: shared
    /// counter writes (`clock_cas` — GV1 ticks plus lazy-GV5 stale-version
    /// catch-ups), lazy commit stamps that reused the clock without writing
    /// it (`clock_reuse`), and the per-thread epoch slots each committing
    /// writer scanned while quiescing (`quiesce_scans`).  The cas/reuse ratio
    /// is what the decentralized clock is meant to drive toward zero.  Empty
    /// when no series touched the clock plane.
    pub fn render_clock_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.clock_cas == 0 && stats.clock_reuse == 0 && stats.quiesce_scans == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "# clock {:>10}: shared-line cas {:>8}  lazy reuses {:>8}  quiesce scans {:>10}",
                s.mechanism.label(),
                stats.clock_cas,
                stats.clock_reuse,
                stats.quiesce_scans,
            );
        }
        out
    }

    /// One line per mechanism summarising the snapshot read path: read-only
    /// fast commits (no read set, no commit validation), declared-read-only
    /// transactions the driver had to upgrade to update transactions, and
    /// begin snapshots successfully advanced in place of an abort.  Empty
    /// when no series touched the snapshot path.
    pub fn render_snapshot_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.ro_fast_commits == 0 && stats.ro_upgrades == 0 && stats.snapshot_refreshes == 0
            {
                continue;
            }
            let _ = writeln!(
                out,
                "# snapshot {:>10}: ro fast commits {:>8}  ro upgrades {:>8}  refreshes {:>10}",
                s.mechanism.label(),
                stats.ro_fast_commits,
                stats.ro_upgrades,
                stats.snapshot_refreshes,
            );
        }
        out
    }

    /// One line per mechanism summarising the core-local memory plane:
    /// mutex-free arena allocations versus global refills, remote (cross-
    /// thread) frees, and failed CASes on the sharded ownership-record
    /// table.  Empty when no series touched the plane.
    pub fn render_memory_plane_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            if stats.heap_arena_allocs == 0
                && stats.heap_global_refills == 0
                && stats.heap_remote_frees == 0
                && stats.orec_cas_failures == 0
            {
                continue;
            }
            let _ = writeln!(
                out,
                "# memory-plane {:>10}: arena allocs {:>8}  global refills {:>8}  remote frees {:>8}  orec cas failures {:>8}",
                s.mechanism.label(),
                stats.heap_arena_allocs,
                stats.heap_global_refills,
                stats.heap_remote_frees,
                stats.orec_cas_failures,
            );
        }
        out
    }

    /// One line per mechanism and operation class giving whole-transaction
    /// latency quantile upper bounds from the log2 histograms: p50, p99 and
    /// p999, each the inclusive upper edge of the bucket the quantile falls
    /// in.  The commit classes (update / read-only) come first, then the
    /// workload-declared [`OpClass`] classes (get/put/del/scan); classes
    /// never recorded are skipped.  Each line also carries the series'
    /// `ro_fast_commits` / `snapshot_refreshes` counters, so the snapshot
    /// fast-path claim is visible wherever a latency is quoted.
    pub fn render_latency_stats(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            let stats = s
                .points
                .iter()
                .fold(StatsSnapshot::default(), |acc, p| acc.merge(&p.stats));
            let mut classes = vec![
                ("update", &stats.update_tx_latency),
                ("ro", &stats.ro_tx_latency),
            ];
            for op in OpClass::ALL {
                classes.push((op.label(), stats.op_latency(op)));
            }
            for (class, hist) in classes {
                if hist.count() == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "# latency {:>10} {:>6}: n {:>10}  p50 <= {:>12}ns  p99 <= {:>12}ns  p999 <= {:>12}ns  ro_fast {:>10}  refreshes {:>8}",
                    s.mechanism.label(),
                    class,
                    hist.count(),
                    hist.quantile_upper_bound(0.50),
                    hist.quantile_upper_bound(0.99),
                    hist.quantile_upper_bound(0.999),
                    stats.ro_fast_commits,
                    stats.snapshot_refreshes,
                );
            }
        }
        out
    }
}

/// A complete experiment: one figure or table of the paper.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier (`"fig2.3"`, `"table2.1"`, …).
    pub experiment: String,
    /// Human-readable title.
    pub title: String,
    /// Runtime configuration label (`"eager-stm"`, `"lazy-stm"`, `"htm"`).
    pub runtime: String,
    /// The figure's panels.
    pub panels: Vec<Panel>,
    /// Free-form notes (trial counts, scaling factors, host description).
    pub notes: BTreeMap<String, String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(
        experiment: impl Into<String>,
        title: impl Into<String>,
        runtime: impl Into<String>,
    ) -> Self {
        Report {
            experiment: experiment.into(),
            title: title.into(),
            runtime: runtime.into(),
            panels: Vec::new(),
            notes: BTreeMap::new(),
        }
    }

    /// Adds a note recorded alongside the data (e.g. `items = 2^16`).
    pub fn note(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.notes.insert(key.into(), value.into());
    }

    /// Adds a panel and returns a mutable reference to it.
    pub fn panel_mut(&mut self, label: &str, x_label: &str) -> &mut Panel {
        if let Some(i) = self.panels.iter().position(|p| p.label == label) {
            return &mut self.panels[i];
        }
        self.panels.push(Panel::new(label, x_label));
        self.panels.last_mut().expect("just pushed")
    }

    /// Renders the whole report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} — {} [{}]",
            self.experiment, self.title, self.runtime
        );
        for (k, v) in &self.notes {
            let _ = writeln!(out, "#   {k}: {v}");
        }
        let _ = writeln!(out);
        for panel in &self.panels {
            out.push_str(&panel.render());
            out.push('\n');
        }
        out
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().pretty()
    }

    /// Parses a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        Report::from_value(&Value::parse(s)?)
    }
}

// Hand-written JSON (de)serialization: the build environment cannot fetch
// serde, and the record types are few and flat enough that explicit code
// stays readable.  Field names match what a serde derive would emit, so
// reports written by earlier builds keep parsing.

fn stats_to_value(stats: &StatsSnapshot) -> Value {
    Value::Obj(
        stats
            .as_pairs()
            .into_iter()
            .map(|(name, v)| (name.to_string(), Value::Num(v as f64)))
            .collect(),
    )
}

fn stats_from_value(v: &Value) -> Result<StatsSnapshot, JsonError> {
    let pairs = match v {
        Value::Obj(pairs) => pairs,
        _ => return Err(JsonError::new("stats must be an object")),
    };
    let mut stats = StatsSnapshot::default();
    for (name, value) in pairs {
        let n = value
            .as_u64()
            .ok_or_else(|| JsonError::new(format!("stat `{name}` must be a u64")))?;
        // Unknown counters are ignored so old reports survive renames.
        stats.set_by_name(name, n);
    }
    Ok(stats)
}

fn u64_field(v: &Value, key: &str) -> Result<u64, JsonError> {
    v.require(key)?
        .as_u64()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a u64")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, JsonError> {
    v.require(key)?
        .as_f64()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a number")))
}

fn str_field(v: &Value, key: &str) -> Result<String, JsonError> {
    Ok(v.require(key)?
        .as_str()
        .ok_or_else(|| JsonError::new(format!("`{key}` must be a string")))?
        .to_string())
}

impl DataPoint {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("x", Value::Num(self.x as f64)),
            ("seconds", Value::Num(self.seconds)),
            ("stddev", Value::Num(self.stddev)),
            ("trials", Value::Num(self.trials as f64)),
            ("stats", stats_to_value(&self.stats)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(DataPoint {
            x: u64_field(v, "x")?,
            seconds: f64_field(v, "seconds")?,
            stddev: f64_field(v, "stddev")?,
            trials: u64_field(v, "trials")? as u32,
            stats: stats_from_value(v.require("stats")?)?,
        })
    }
}

impl Series {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("mechanism", Value::Str(self.mechanism.label().to_string())),
            (
                "points",
                Value::Arr(self.points.iter().map(DataPoint::to_value).collect()),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let mechanism = str_field(v, "mechanism")?
            .parse::<Mechanism>()
            .map_err(JsonError::new)?;
        let points = v
            .require("points")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`points` must be an array"))?
            .iter()
            .map(DataPoint::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Series { mechanism, points })
    }
}

impl Panel {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("label", Value::Str(self.label.clone())),
            ("x_label", Value::Str(self.x_label.clone())),
            (
                "series",
                Value::Arr(self.series.iter().map(Series::to_value).collect()),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let series = v
            .require("series")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`series` must be an array"))?
            .iter()
            .map(Series::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Panel {
            label: str_field(v, "label")?,
            x_label: str_field(v, "x_label")?,
            series,
        })
    }
}

impl Report {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("experiment", Value::Str(self.experiment.clone())),
            ("title", Value::Str(self.title.clone())),
            ("runtime", Value::Str(self.runtime.clone())),
            (
                "panels",
                Value::Arr(self.panels.iter().map(Panel::to_value).collect()),
            ),
            (
                "notes",
                Value::Obj(
                    self.notes
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let panels = v
            .require("panels")?
            .as_arr()
            .ok_or_else(|| JsonError::new("`panels` must be an array"))?
            .iter()
            .map(Panel::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let mut notes = BTreeMap::new();
        if let Value::Obj(pairs) = v.require("notes")? {
            for (k, note) in pairs {
                let s = note
                    .as_str()
                    .ok_or_else(|| JsonError::new("notes must map to strings"))?;
                notes.insert(k.clone(), s.to_string());
            }
        }
        Ok(Report {
            experiment: str_field(v, "experiment")?,
            title: str_field(v, "title")?,
            runtime: str_field(v, "runtime")?,
            panels,
            notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: u64, secs: f64) -> DataPoint {
        DataPoint {
            x,
            seconds: secs,
            stddev: 0.0,
            trials: 1,
            stats: StatsSnapshot::default(),
        }
    }

    #[test]
    fn from_trials_computes_mean_and_stddev() {
        let p = DataPoint::from_trials(
            16,
            &[Duration::from_millis(100), Duration::from_millis(300)],
            StatsSnapshot::default(),
        );
        assert_eq!(p.x, 16);
        assert!((p.seconds - 0.2).abs() < 1e-9);
        assert!(p.stddev > 0.0);
        assert_eq!(p.trials, 2);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn from_trials_rejects_empty_input() {
        let _ = DataPoint::from_trials(1, &[], StatsSnapshot::default());
    }

    #[test]
    fn series_stays_sorted_and_lookup_works() {
        let mut s = Series::new(Mechanism::Retry);
        s.push(point(128, 1.0));
        s.push(point(4, 2.0));
        s.push(point(16, 1.5));
        assert_eq!(
            s.points.iter().map(|p| p.x).collect::<Vec<_>>(),
            vec![4, 16, 128]
        );
        assert!((s.at(16).unwrap().seconds - 1.5).abs() < 1e-12);
        assert!(s.at(99).is_none());
    }

    #[test]
    fn panel_tracks_winner_and_xs() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Retry).push(point(4, 0.8));
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.2));
        panel.series_mut(Mechanism::Restart).push(point(4, 0.5));
        panel.series_mut(Mechanism::Restart).push(point(16, 0.4));
        assert_eq!(panel.xs(), vec![4, 16]);
        assert_eq!(panel.winner_at(4), Some(Mechanism::Restart));
        assert_eq!(panel.winner_at(16), Some(Mechanism::Restart));
        assert_eq!(panel.winner_at(9999), None);
    }

    #[test]
    fn panel_series_mut_reuses_existing_series() {
        let mut panel = Panel::new("p", "x");
        panel.series_mut(Mechanism::Await).push(point(1, 1.0));
        panel.series_mut(Mechanism::Await).push(point(2, 2.0));
        assert_eq!(panel.series.len(), 1);
        assert_eq!(panel.series[0].points.len(), 2);
    }

    #[test]
    fn report_renders_tables_and_round_trips_json() {
        let mut r = Report::new("fig2.3", "Bounded buffer, eager STM", "eager-stm");
        r.note("items", "65536");
        let panel = r.panel_mut("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Retry).push(point(4, 0.9));
        panel.series_mut(Mechanism::Await).push(point(4, 0.8));
        let text = r.render();
        assert!(text.contains("fig2.3"));
        assert!(text.contains("p1-c1"));
        assert!(text.contains("Retry"));
        assert!(text.contains("0.9"));

        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.experiment, "fig2.3");
        assert_eq!(back.panels.len(), 1);
        assert_eq!(back.notes["items"], "65536");
    }

    #[test]
    fn wake_stats_render_only_when_wake_work_happened() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(
            panel.render_wake_stats().is_empty(),
            "no wake work, no wake lines"
        );

        let mut with_wakes = point(4, 1.0);
        with_wakes.stats.wake_checks = 12;
        with_wakes.stats.wakeups = 3;
        with_wakes.stats.wake_shard_scans = 5;
        with_wakes.stats.wake_shard_skips = 200;
        with_wakes.stats.wake_targeted = 7;
        with_wakes.stats.wake_timeouts = 4;
        with_wakes.stats.wake_cancels = 1;
        with_wakes.stats.timer_ticks = 99;
        panel.series_mut(Mechanism::Retry).push(with_wakes);
        let text = panel.render();
        assert!(text.contains("wake-path"));
        assert!(text.contains("waiters scanned       12"));
        assert!(text.contains("shards skipped        200"));
        assert!(text.contains("targeted commits        7"));
        assert!(text.contains("timeouts        4"));
        assert!(text.contains("cancels      1"));
        assert!(text.contains("timer ticks       99"));
        assert!(
            !text.contains("Pthreads: waiters"),
            "series without wake work stay out of the wake block"
        );
    }

    #[test]
    fn access_stats_render_only_when_recorded() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(panel.render_access_stats().is_empty());

        let mut with_sets = point(4, 1.0);
        with_sets.stats.read_set_max = 16384;
        with_sets.stats.write_set_max = 512;
        with_sets.stats.log_pool_reuses = 31;
        panel.series_mut(Mechanism::Retry).push(with_sets);
        // A second point with smaller maxima must not shrink the rendered
        // high-water mark (max-merge, not sum).
        let mut smaller = point(16, 1.0);
        smaller.stats.read_set_max = 10;
        panel.series_mut(Mechanism::Retry).push(smaller);
        let text = panel.render();
        assert!(text.contains("access-set"));
        assert!(text.contains("read set max    16384"));
        assert!(text.contains("write set max      512"));
        assert!(text.contains("pool reuses         31"));
        assert!(
            !text.contains("Pthreads: read set"),
            "series without access-set work stay out of the block"
        );
    }

    #[test]
    fn mode_stats_render_only_when_the_ladder_was_used() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        let mut plain = point(4, 1.0);
        plain.stats.sw_commits = 100;
        panel.series_mut(Mechanism::Await).push(plain);
        assert!(
            panel.render_mode_stats().is_empty(),
            "plain software commits alone do not make a mode-ladder line"
        );

        // The Restart baseline's explicit aborts must surface even with no
        // serial work at all (they used to be invisible in reports).
        let mut restarts = point(4, 1.0);
        restarts.stats.sw_commits = 10;
        restarts.stats.explicit_aborts = 55;
        panel.series_mut(Mechanism::Restart).push(restarts);

        let mut laddered = point(4, 1.0);
        laddered.stats.hw_commits = 7;
        laddered.stats.sw_commits = 3;
        laddered.stats.serial_commits = 2;
        laddered.stats.mode_switches = 9;
        laddered.stats.cm_escalations = 4;
        panel.series_mut(Mechanism::Retry).push(laddered);

        let text = panel.render();
        assert!(text.contains("mode-ladder"));
        assert!(text.contains("explicit aborts       55"));
        assert!(text.contains("serial commits        2"));
        assert!(text.contains("cm escalations        4"));
        assert!(text.contains("mode switches        9"));
        assert!(
            !text.contains("mode-ladder      Await"),
            "series without ladder work stay out of the block"
        );
    }

    #[test]
    fn hw_plane_stats_render_only_when_faults_or_redeliveries_happened() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        let mut plain = point(4, 1.0);
        plain.stats.hw_commits = 50;
        plain.stats.hw_aborts = 5;
        panel.series_mut(Mechanism::Await).push(plain);
        assert!(
            panel.render_hw_plane_stats().is_empty(),
            "genuine hardware aborts alone do not make a hardware-plane line"
        );

        let mut with_faults = point(4, 1.0);
        with_faults.stats.hw_aborts = 40;
        with_faults.stats.hw_faults_injected = 33;
        with_faults.stats.watchdog_redeliveries = 2;
        panel.series_mut(Mechanism::Retry).push(with_faults);
        let text = panel.render();
        assert!(text.contains("hardware-plane"));
        assert!(text.contains("faults injected       33"));
        assert!(text.contains("hw aborts       40"));
        assert!(text.contains("watchdog redeliveries        2"));
        assert!(
            !text.contains("hardware-plane      Await"),
            "series without incidents stay out of the block"
        );
    }

    #[test]
    fn clock_stats_render_only_when_the_clock_plane_was_touched() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(
            panel.render_clock_stats().is_empty(),
            "no clock work, no clock line"
        );

        let mut with_clock = point(4, 1.0);
        with_clock.stats.clock_cas = 3;
        with_clock.stats.clock_reuse = 997;
        with_clock.stats.quiesce_scans = 1234;
        panel.series_mut(Mechanism::Retry).push(with_clock);
        let text = panel.render();
        assert!(text.contains("# clock"));
        assert!(text.contains("shared-line cas        3"));
        assert!(text.contains("lazy reuses      997"));
        assert!(text.contains("quiesce scans       1234"));
        assert!(
            !text.contains("clock   Pthreads"),
            "series without clock work stay out of the block"
        );
    }

    #[test]
    fn snapshot_stats_render_only_when_the_snapshot_path_was_used() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(
            panel.render_snapshot_stats().is_empty(),
            "no snapshot work, no snapshot line"
        );

        let mut with_snap = point(4, 1.0);
        with_snap.stats.ro_fast_commits = 420;
        with_snap.stats.ro_upgrades = 7;
        with_snap.stats.snapshot_refreshes = 13;
        panel.series_mut(Mechanism::Retry).push(with_snap);
        let text = panel.render();
        assert!(text.contains("# snapshot"));
        assert!(text.contains("ro fast commits      420"));
        assert!(text.contains("ro upgrades        7"));
        assert!(text.contains("refreshes         13"));
        assert!(
            !text.contains("snapshot   Pthreads"),
            "series without snapshot work stay out of the block"
        );
    }

    #[test]
    fn memory_plane_stats_render_only_when_the_plane_was_touched() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(
            panel.render_memory_plane_stats().is_empty(),
            "no arena or orec work, no memory-plane line"
        );

        let mut with_mem = point(4, 1.0);
        with_mem.stats.heap_arena_allocs = 640;
        with_mem.stats.heap_global_refills = 9;
        with_mem.stats.heap_remote_frees = 17;
        with_mem.stats.orec_cas_failures = 3;
        panel.series_mut(Mechanism::Retry).push(with_mem);
        let text = panel.render();
        assert!(text.contains("# memory-plane"));
        assert!(text.contains("arena allocs      640"));
        assert!(text.contains("global refills        9"));
        assert!(text.contains("remote frees       17"));
        assert!(text.contains("orec cas failures        3"));
        assert!(
            !text.contains("memory-plane   Pthreads"),
            "series without memory-plane work stay out of the block"
        );
    }

    #[test]
    fn latency_stats_render_quantiles_per_operation_class() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        panel.series_mut(Mechanism::Pthreads).push(point(4, 1.0));
        assert!(
            panel.render_latency_stats().is_empty(),
            "no samples, no latency lines"
        );

        let hist = tm_core::LatencyHistogram::default();
        for _ in 0..99 {
            hist.record(700);
        }
        hist.record(1_000_000);
        let mut with_lat = point(4, 1.0);
        with_lat.stats.update_tx_latency = hist.snapshot();
        panel.series_mut(Mechanism::Retry).push(with_lat);
        let text = panel.render();
        assert!(text.contains("# latency"));
        assert!(text.contains("update"));
        // p50 falls in the 700ns bucket (upper edge 1023), p999 in the 1ms one.
        assert!(text.contains("p50 <=         1023ns"));
        assert!(text.contains("p999 <=      1048575ns"));
        assert!(!text.contains("    ro:"), "the empty ro class is skipped");
    }

    #[test]
    fn latency_stats_render_workload_operation_classes() {
        let mut panel = Panel::new("p1-c1", "buffer size");
        let mut p = point(4, 1.0);
        let get_hist = tm_core::LatencyHistogram::default();
        get_hist.record(700);
        get_hist.record(900);
        let scan_hist = tm_core::LatencyHistogram::default();
        scan_hist.record(50_000);
        p.stats.op_get_latency = get_hist.snapshot();
        p.stats.op_scan_latency = scan_hist.snapshot();
        p.stats.ro_fast_commits = 2;
        p.stats.snapshot_refreshes = 1;
        panel.series_mut(Mechanism::Await).push(p);
        let text = panel.render_latency_stats();
        assert!(text.contains("   get: n          2"), "{text}");
        assert!(text.contains("  scan: n          1"), "{text}");
        assert!(
            !text.contains("   put:") && !text.contains("   del:"),
            "unrecorded operation classes are skipped: {text}"
        );
        // The fast-path counters ride on every latency line.
        assert!(text.contains("ro_fast          2"), "{text}");
        assert!(text.contains("refreshes        1"), "{text}");
    }

    #[test]
    fn pure_timeout_work_is_enough_to_render_a_wake_line() {
        // A lossy consumer can time out without any writer ever scanning a
        // shard; its series must still surface the timeout counters.
        let mut panel = Panel::new("p1-c1", "buffer size");
        let mut p = point(4, 1.0);
        p.stats.wake_timeouts = 6;
        panel.series_mut(Mechanism::Await).push(p);
        let text = panel.render_wake_stats();
        assert!(text.contains("timeouts        6"));
    }

    #[test]
    fn missing_points_render_as_dashes() {
        let mut panel = Panel::new("p8-c8", "buffer size");
        panel.series_mut(Mechanism::Retry).push(point(4, 1.0));
        panel.series_mut(Mechanism::Await).push(point(16, 2.0));
        let text = panel.render();
        assert!(text.contains('-'));
    }
}
