//! The producer/consumer micro-benchmark of §2.4.1 (Figures 2.3–2.5).
//!
//! A bounded buffer is shared by `p` producer threads and `c` consumer
//! threads.  A fixed number of elements is produced in total (split evenly
//! across producers) and the same number is consumed (split evenly across
//! consumers); the buffer is half-filled before each trial, exactly as in the
//! paper.  Each (mechanism, runtime, p, c, buffer-size) combination is one
//! trial; the figure binaries sweep these parameters and average several
//! trials.

use std::sync::Arc;
use std::time::{Duration, Instant};

use condsync::Mechanism;
use tm_core::{StatsSnapshot, TmConfig};
use tm_sync::{PthreadBuffer, TmBoundedBuffer};

use crate::runtime::{AnyRuntime, RuntimeKind};

/// Parameters of one producer/consumer trial.
#[derive(Copy, Clone, Debug)]
pub struct PcParams {
    /// Number of producer threads (`p` in the figure labels).
    pub producers: usize,
    /// Number of consumer threads (`c` in the figure labels).
    pub consumers: usize,
    /// Bounded-buffer capacity (the figures' x-axis: 4, 16 or 128).
    pub buffer_size: usize,
    /// Total number of elements produced (and consumed).  The paper uses
    /// 2^20; scaled-down runs use smaller values.
    pub total_items: u64,
    /// Which condition-synchronization mechanism the buffer uses.
    pub mechanism: Mechanism,
}

impl PcParams {
    /// The paper's full-scale configuration (2^20 items).
    pub const PAPER_ITEMS: u64 = 1 << 20;

    /// Creates parameters with explicit values.
    pub fn new(
        producers: usize,
        consumers: usize,
        buffer_size: usize,
        total_items: u64,
        mechanism: Mechanism,
    ) -> Self {
        assert!(producers > 0 && consumers > 0, "need at least one of each");
        assert!(
            buffer_size >= 2,
            "the paper half-fills the buffer, so cap >= 2"
        );
        PcParams {
            producers,
            consumers,
            buffer_size,
            total_items,
            mechanism,
        }
    }

    /// Number of items each producer creates.  The total is rounded up to a
    /// common multiple of the producer and consumer counts so the split is
    /// exact (the paper's counts — powers of two everywhere — need no
    /// rounding).
    pub fn items_per_producer(&self) -> u64 {
        self.effective_total() / self.producers as u64
    }

    /// Number of items each consumer removes.
    pub fn items_per_consumer(&self) -> u64 {
        self.effective_total() / self.consumers as u64
    }

    /// The total after rounding up so it divides evenly by both thread
    /// counts.
    pub fn effective_total(&self) -> u64 {
        let p = self.producers as u64;
        let c = self.consumers as u64;
        let lcm = p * c / gcd(p, c);
        self.total_items.div_ceil(lcm) * lcm
    }

    /// The paper's prefill: half the buffer.
    pub fn prefill(&self) -> usize {
        self.buffer_size / 2
    }

    /// The `pi-cj` panel label used in Figures 2.3–2.5.
    pub fn panel_label(&self) -> String {
        format!("p{}-c{}", self.producers, self.consumers)
    }

    /// Heap words needed for this trial: the buffer plus slack for the
    /// condition-variable generation words.  [`run_pc`] uses it to size the
    /// system; callers building their own [`TmConfig`] (the `mode_ladder`
    /// bench) should too, so the formulas cannot diverge.
    pub fn heap_words(&self) -> usize {
        (self.buffer_size + 64).next_power_of_two().max(1 << 12)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Result of one producer/consumer trial.
#[derive(Debug, Clone)]
pub struct PcResult {
    /// The parameters that produced this result.
    pub params: PcParams,
    /// Which runtime executed the transactional mechanisms (`None` for the
    /// Pthreads baseline, which uses no transactions).
    pub runtime: Option<RuntimeKind>,
    /// Wall-clock duration of the trial.
    pub elapsed: Duration,
    /// Items actually produced.
    pub produced: u64,
    /// Items actually consumed.
    pub consumed: u64,
    /// Sum of all consumed values plus the elements left in the buffer;
    /// compared against the sum of all produced values to check conservation.
    pub checksum_ok: bool,
    /// Aggregated transaction statistics (zero for Pthreads).
    pub stats: StatsSnapshot,
}

impl PcResult {
    /// Wall-clock seconds (the figures' y-axis).
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Throughput in operations (produce + consume) per second.
    pub fn ops_per_second(&self) -> f64 {
        (self.produced + self.consumed) as f64 / self.seconds().max(f64::MIN_POSITIVE)
    }
}

/// Runs one trial: `params.mechanism` on `runtime_kind`, with the default
/// system configuration (heap sized to the buffer, `Fixed` policy).
///
/// For [`Mechanism::Pthreads`] the runtime kind is irrelevant (no
/// transactions run) and the lock-based buffer is used instead.
pub fn run_pc(runtime_kind: RuntimeKind, params: &PcParams) -> PcResult {
    let config = TmConfig {
        heap_words: params.heap_words(),
        ..TmConfig::default()
    };
    run_pc_configured(runtime_kind, params, config)
}

/// Runs one trial with a caller-supplied system configuration (used by the
/// `mode_ladder` bench to sweep contention-management policies).  The heap
/// must be large enough for the buffer; [`run_pc`] sizes it automatically.
pub fn run_pc_configured(
    runtime_kind: RuntimeKind,
    params: &PcParams,
    config: TmConfig,
) -> PcResult {
    if params.mechanism == Mechanism::Pthreads {
        return run_pc_pthreads(params);
    }
    assert!(
        params.mechanism.supports_htm() || runtime_kind.supports_retry_orig(),
        "Retry-Orig needs STM lock metadata and cannot run on the HTM configuration"
    );

    let rt = runtime_kind.build(config);
    let system = Arc::clone(rt.system());
    let buffer = TmBoundedBuffer::new(&system, params.buffer_size);
    buffer.prefill(&system, params.prefill());
    let initial_sum: u64 = (1..=params.prefill() as u64).sum();

    let per_prod = params.items_per_producer();
    let per_cons = params.items_per_consumer();
    let mechanism = params.mechanism;

    let start = Instant::now();
    let produced_sum = std::thread::scope(|scope| {
        let mut producers = Vec::with_capacity(params.producers);
        for pid in 0..params.producers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let buffer = Arc::clone(&buffer);
            producers.push(scope.spawn(move || {
                let th = system.register_thread();
                let mut sum = 0u64;
                for i in 0..per_prod {
                    // Distinct values per producer so the conservation check
                    // is meaningful.
                    let value = (pid as u64) * per_prod + i + 1_000_000;
                    rt.atomically(&th, |tx| buffer.produce(mechanism, tx, value));
                    sum += value;
                }
                sum
            }));
        }
        let mut consumers = Vec::with_capacity(params.consumers);
        for _ in 0..params.consumers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let buffer = Arc::clone(&buffer);
            consumers.push(scope.spawn(move || {
                let th = system.register_thread();
                let mut sum = 0u64;
                for _ in 0..per_cons {
                    sum += rt.atomically(&th, |tx| buffer.consume(mechanism, tx));
                }
                sum
            }));
        }
        let produced: u64 = producers
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .sum();
        let consumed: u64 = consumers
            .into_iter()
            .map(|h| h.join().expect("consumer"))
            .sum();
        (produced, consumed)
    });
    let elapsed = start.elapsed();

    // Conservation: everything produced (plus the prefill) is either consumed
    // or still in the buffer, and the buffer ends exactly as full as it
    // started because produce and consume counts are equal.
    let (produced_total, consumed_total) = produced_sum;
    let remaining = buffer.len_direct(&system);
    let remaining_sum = drain_remaining(&rt, &buffer, remaining);
    let checksum_ok = produced_total + initial_sum == consumed_total + remaining_sum
        && remaining == params.prefill() as u64;

    PcResult {
        params: *params,
        runtime: Some(runtime_kind),
        elapsed,
        produced: per_prod * params.producers as u64,
        consumed: per_cons * params.consumers as u64,
        checksum_ok,
        stats: system.stats(),
    }
}

/// Drains whatever is left in the buffer (non-concurrently) and returns the
/// sum of the drained values, for the conservation check.
fn drain_remaining(rt: &AnyRuntime, buffer: &Arc<TmBoundedBuffer>, remaining: u64) -> u64 {
    let system = Arc::clone(rt.system());
    let th = system.register_thread();
    let mut sum = 0u64;
    for _ in 0..remaining {
        sum += rt.atomically(&th, |tx| buffer.get(tx));
    }
    sum
}

/// The Pthreads baseline: mutex + condition variables, no transactions.
fn run_pc_pthreads(params: &PcParams) -> PcResult {
    let buffer = Arc::new(PthreadBuffer::new(params.buffer_size));
    buffer.prefill(params.prefill());
    let initial_sum: u64 = (1..=params.prefill() as u64).sum();

    let per_prod = params.items_per_producer();
    let per_cons = params.items_per_consumer();

    let start = Instant::now();
    let (produced_total, consumed_total) = std::thread::scope(|scope| {
        let mut producers = Vec::with_capacity(params.producers);
        for pid in 0..params.producers {
            let buffer = Arc::clone(&buffer);
            producers.push(scope.spawn(move || {
                let mut sum = 0u64;
                for i in 0..per_prod {
                    let value = (pid as u64) * per_prod + i + 1_000_000;
                    buffer.produce(value);
                    sum += value;
                }
                sum
            }));
        }
        let mut consumers = Vec::with_capacity(params.consumers);
        for _ in 0..params.consumers {
            let buffer = Arc::clone(&buffer);
            consumers.push(scope.spawn(move || {
                let mut sum = 0u64;
                for _ in 0..per_cons {
                    sum += buffer.consume();
                }
                sum
            }));
        }
        let produced: u64 = producers
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .sum();
        let consumed: u64 = consumers
            .into_iter()
            .map(|h| h.join().expect("consumer"))
            .sum();
        (produced, consumed)
    });
    let elapsed = start.elapsed();

    let mut remaining_sum = 0u64;
    let mut remaining = 0u64;
    while let Some(v) = buffer.try_consume() {
        remaining_sum += v;
        remaining += 1;
    }
    let checksum_ok = produced_total + initial_sum == consumed_total + remaining_sum
        && remaining == params.prefill() as u64;

    PcResult {
        params: *params,
        runtime: None,
        elapsed,
        produced: per_prod * params.producers as u64,
        consumed: per_cons * params.consumers as u64,
        checksum_ok,
        stats: StatsSnapshot::default(),
    }
}

/// Runs `trials` trials and returns all results.
pub fn run_pc_trials(runtime_kind: RuntimeKind, params: &PcParams, trials: u32) -> Vec<PcResult> {
    (0..trials.max(1))
        .map(|_| run_pc(runtime_kind, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: u64 = 512;

    fn check(kind: RuntimeKind, mech: Mechanism, p: usize, c: usize, cap: usize) {
        let params = PcParams::new(p, c, cap, SMALL, mech);
        let result = run_pc(kind, &params);
        assert!(
            result.checksum_ok,
            "conservation failed: {mech} on {kind} p{p}c{c} cap{cap}"
        );
        assert_eq!(result.produced, params.effective_total());
        assert_eq!(result.consumed, params.effective_total());
    }

    #[test]
    fn params_split_items_evenly() {
        let p = PcParams::new(4, 8, 16, 1000, Mechanism::Retry);
        let total = p.effective_total();
        assert!(total >= 1000);
        assert_eq!(total % 4, 0);
        assert_eq!(total % 8, 0);
        assert_eq!(p.items_per_producer() * 4, total);
        assert_eq!(p.items_per_consumer() * 8, total);
        assert_eq!(p.prefill(), 8);
        assert_eq!(p.panel_label(), "p4-c8");
    }

    #[test]
    fn effective_total_is_identity_for_paper_configs() {
        // Powers of two divide 2^20 exactly: no rounding in the paper sweep.
        for &(p, c) in &[(1, 1), (2, 4), (8, 8), (1, 8)] {
            let params = PcParams::new(p, c, 16, PcParams::PAPER_ITEMS, Mechanism::Retry);
            assert_eq!(params.effective_total(), PcParams::PAPER_ITEMS);
        }
    }

    #[test]
    fn pthreads_baseline_conserves_elements() {
        check(RuntimeKind::EagerStm, Mechanism::Pthreads, 2, 2, 8);
    }

    #[test]
    fn eager_stm_all_mechanisms_balanced() {
        for mech in [
            Mechanism::TmCondVar,
            Mechanism::WaitPred,
            Mechanism::Await,
            Mechanism::Retry,
            Mechanism::RetryOrig,
            Mechanism::Restart,
        ] {
            check(RuntimeKind::EagerStm, mech, 2, 2, 8);
        }
    }

    #[test]
    fn lazy_stm_retry_and_await_balanced() {
        check(RuntimeKind::LazyStm, Mechanism::Retry, 2, 2, 8);
        check(RuntimeKind::LazyStm, Mechanism::Await, 2, 2, 8);
        check(RuntimeKind::LazyStm, Mechanism::WaitPred, 1, 2, 4);
    }

    #[test]
    fn htm_retry_and_waitpred_balanced() {
        check(RuntimeKind::Htm, Mechanism::Retry, 2, 2, 8);
        check(RuntimeKind::Htm, Mechanism::WaitPred, 2, 1, 4);
    }

    #[test]
    fn imbalanced_configurations_complete() {
        check(RuntimeKind::EagerStm, Mechanism::Retry, 1, 4, 4);
        check(RuntimeKind::EagerStm, Mechanism::Await, 4, 1, 4);
    }

    #[test]
    fn tiny_buffer_forces_sleeping_and_still_conserves() {
        let params = PcParams::new(2, 2, 2, SMALL, Mechanism::Retry);
        let result = run_pc(RuntimeKind::EagerStm, &params);
        assert!(result.checksum_ok);
        // With a 2-slot buffer and 4 threads, somebody must have slept or at
        // least descheduled: the stats should show mechanism activity.
        assert!(result.stats.descheds + result.stats.desched_skips + result.stats.sw_aborts > 0);
    }

    #[test]
    #[should_panic(expected = "Retry-Orig")]
    fn retry_orig_on_htm_is_rejected() {
        let params = PcParams::new(1, 1, 4, 16, Mechanism::RetryOrig);
        let _ = run_pc(RuntimeKind::Htm, &params);
    }

    #[test]
    fn trials_helper_runs_requested_count() {
        let params = PcParams::new(1, 1, 4, 64, Mechanism::Restart);
        let results = run_pc_trials(RuntimeKind::EagerStm, &params, 3);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.checksum_ok));
    }
}
