//! Runtime selection for workloads.
//!
//! The paper evaluates every workload under three transactional-memory
//! configurations — **Eager STM**, **Lazy STM** and **HTM** — plus the
//! non-transactional `Pthreads` baseline; this reproduction adds a fourth,
//! **Hybrid** (HTM fast path over a lazy-STM software path).  Workload
//! drivers are written once against [`AnyRuntime`], an enum-dispatch wrapper
//! over the runtime crates, and are parameterized by [`RuntimeKind`].

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use htm_sim::HtmSim;
use stm_eager::EagerStm;
use stm_lazy::LazyStm;
use tm_core::{ThreadCtx, TmConfig, TmRt, TmRuntime, TmSystem, Tx, TxResult};
use tm_hybrid::HybridTm;

/// Which transactional-memory implementation provides the transactions.
///
/// Mirrors the three configurations of §2.4 — the default GCC "ml-wt" eager
/// STM, a TL2-like lazy STM, and TSX-style best-effort HTM — plus the
/// beyond-paper hybrid HTM+STM configuration.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RuntimeKind {
    /// Undo-log, encounter-time-locking STM (Appendix A; paper "Eager STM").
    EagerStm,
    /// Redo-log, commit-time-locking STM (TL2-style; paper "Lazy STM").
    LazyStm,
    /// Best-effort hardware TM simulator (paper "HTM").
    Htm,
    /// Hybrid HTM+STM: hardware fast path, lazy-STM software fallback,
    /// serial gate as the last rung (beyond the paper; `tm-hybrid`).
    Hybrid,
}

impl RuntimeKind {
    /// All runtime configurations: the paper's three, in the order the paper
    /// presents them (Figures 2.3/2.6 eager, 2.4/2.7 lazy, 2.5/2.8 HTM),
    /// followed by the hybrid extension.
    pub const ALL: [RuntimeKind; 4] = [
        RuntimeKind::EagerStm,
        RuntimeKind::LazyStm,
        RuntimeKind::Htm,
        RuntimeKind::Hybrid,
    ];

    /// The label used in figure captions and harness output.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::EagerStm => "eager-stm",
            RuntimeKind::LazyStm => "lazy-stm",
            RuntimeKind::Htm => "htm",
            RuntimeKind::Hybrid => "hybrid",
        }
    }

    /// True if the `Retry-Orig` baseline can run on this configuration.
    ///
    /// `Retry-Orig` publishes the ownership records covering the waiter's
    /// read set, so it needs STM lock metadata: the pure HTM configuration
    /// is excluded (as in the paper's figures).  The hybrid configuration
    /// *is* supported — its software path is a full lazy STM, and the driver
    /// routes every `Retry-Orig` sleep through it (hardware attempts first
    /// re-execute in software, exactly as they do for value-based `Retry`).
    pub fn supports_retry_orig(self) -> bool {
        !matches!(self, RuntimeKind::Htm)
    }

    /// Builds a fresh system + runtime pair with the given configuration.
    pub fn build(self, config: TmConfig) -> AnyRuntime {
        let system = TmSystem::new(config);
        self.over(system)
    }

    /// Layers a runtime of this kind over an existing system.
    pub fn over(self, system: Arc<TmSystem>) -> AnyRuntime {
        match self {
            RuntimeKind::EagerStm => AnyRuntime::Eager(EagerStm::new(system)),
            RuntimeKind::LazyStm => AnyRuntime::Lazy(LazyStm::new(system)),
            RuntimeKind::Htm => AnyRuntime::Htm(HtmSim::new(system)),
            RuntimeKind::Hybrid => AnyRuntime::Hybrid(HybridTm::new(system)),
        }
    }
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for RuntimeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace(['-', '_'], "");
        Ok(match norm.as_str() {
            "eager" | "eagerstm" | "mlwt" => RuntimeKind::EagerStm,
            "lazy" | "lazystm" | "tl2" => RuntimeKind::LazyStm,
            "htm" | "tsx" | "hardware" => RuntimeKind::Htm,
            "hybrid" | "hytm" | "hybridtm" => RuntimeKind::Hybrid,
            _ => return Err(format!("unknown runtime kind: {s}")),
        })
    }
}

/// Enum dispatch over the three runtime implementations.
///
/// [`TmRt::atomically`] is not object-safe (it is generic in the body's
/// return type), so workloads that must pick their runtime at run time use
/// this wrapper instead of `&dyn TmRuntime`.
#[derive(Debug, Clone)]
pub enum AnyRuntime {
    /// The eager (undo-log) STM.
    Eager(Arc<EagerStm>),
    /// The lazy (redo-log) STM.
    Lazy(Arc<LazyStm>),
    /// The HTM simulator.
    Htm(Arc<HtmSim>),
    /// The hybrid HTM+STM runtime.
    Hybrid(Arc<HybridTm>),
}

impl AnyRuntime {
    /// Which kind of runtime this is.
    pub fn kind(&self) -> RuntimeKind {
        match self {
            AnyRuntime::Eager(_) => RuntimeKind::EagerStm,
            AnyRuntime::Lazy(_) => RuntimeKind::LazyStm,
            AnyRuntime::Htm(_) => RuntimeKind::Htm,
            AnyRuntime::Hybrid(_) => RuntimeKind::Hybrid,
        }
    }

    /// The shared system (heap, clock, registries) under this runtime.
    pub fn system(&self) -> &Arc<TmSystem> {
        match self {
            AnyRuntime::Eager(rt) => TmRuntime::system(rt.as_ref()),
            AnyRuntime::Lazy(rt) => TmRuntime::system(rt.as_ref()),
            AnyRuntime::Htm(rt) => TmRuntime::system(rt.as_ref()),
            AnyRuntime::Hybrid(rt) => TmRuntime::system(rt.as_ref()),
        }
    }

    /// Runs `body` as a transaction until it commits and returns its result.
    pub fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        match self {
            AnyRuntime::Eager(rt) => rt.atomically(thread, body),
            AnyRuntime::Lazy(rt) => rt.atomically(thread, body),
            AnyRuntime::Htm(rt) => rt.atomically(thread, body),
            AnyRuntime::Hybrid(rt) => rt.atomically(thread, body),
        }
    }

    /// Runs `body` as a *declared read-only* transaction (snapshot read path
    /// on the software runtimes; see [`TmRt::atomically_read`]).
    pub fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        match self {
            AnyRuntime::Eager(rt) => rt.atomically_read(thread, body),
            AnyRuntime::Lazy(rt) => rt.atomically_read(thread, body),
            AnyRuntime::Htm(rt) => rt.atomically_read(thread, body),
            AnyRuntime::Hybrid(rt) => rt.atomically_read(thread, body),
        }
    }

    /// Borrows the runtime as the object-safe [`TmRuntime`] trait.
    pub fn as_dyn(&self) -> &dyn TmRuntime {
        match self {
            AnyRuntime::Eager(rt) => rt.as_ref(),
            AnyRuntime::Lazy(rt) => rt.as_ref(),
            AnyRuntime::Htm(rt) => rt.as_ref(),
            AnyRuntime::Hybrid(rt) => rt.as_ref(),
        }
    }
}

impl TmRuntime for AnyRuntime {
    fn system(&self) -> &Arc<TmSystem> {
        AnyRuntime::system(self)
    }

    fn name(&self) -> &'static str {
        match self {
            AnyRuntime::Eager(rt) => rt.name(),
            AnyRuntime::Lazy(rt) => rt.name(),
            AnyRuntime::Htm(rt) => rt.name(),
            AnyRuntime::Hybrid(rt) => rt.name(),
        }
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        match self {
            AnyRuntime::Eager(rt) => rt.exec_u64(thread, body),
            AnyRuntime::Lazy(rt) => rt.exec_u64(thread, body),
            AnyRuntime::Htm(rt) => rt.exec_u64(thread, body),
            AnyRuntime::Hybrid(rt) => rt.exec_u64(thread, body),
        }
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        match self {
            AnyRuntime::Eager(rt) => rt.exec_bool(thread, body),
            AnyRuntime::Lazy(rt) => rt.exec_bool(thread, body),
            AnyRuntime::Htm(rt) => rt.exec_bool(thread, body),
            AnyRuntime::Hybrid(rt) => rt.exec_bool(thread, body),
        }
    }
}

impl TmRt for AnyRuntime {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        AnyRuntime::atomically(self, thread, body)
    }

    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        AnyRuntime::atomically_read(self, thread, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::TmVar;

    #[test]
    fn labels_round_trip_through_fromstr() {
        for kind in RuntimeKind::ALL {
            assert_eq!(kind.label().parse::<RuntimeKind>().unwrap(), kind);
        }
        assert_eq!("TL2".parse::<RuntimeKind>().unwrap(), RuntimeKind::LazyStm);
        assert_eq!("tsx".parse::<RuntimeKind>().unwrap(), RuntimeKind::Htm);
        assert_eq!("HyTM".parse::<RuntimeKind>().unwrap(), RuntimeKind::Hybrid);
        assert!("vax".parse::<RuntimeKind>().is_err());
    }

    #[test]
    fn retry_orig_support_matches_lock_metadata_availability() {
        assert!(RuntimeKind::EagerStm.supports_retry_orig());
        assert!(RuntimeKind::LazyStm.supports_retry_orig());
        assert!(
            !RuntimeKind::Htm.supports_retry_orig(),
            "pure HTM has no lock metadata (as in the paper's figures)"
        );
        assert!(
            RuntimeKind::Hybrid.supports_retry_orig(),
            "the hybrid's software path has lock metadata, so Retry-Orig runs there"
        );
    }

    #[test]
    fn each_kind_builds_and_commits_a_transaction() {
        for kind in RuntimeKind::ALL {
            let rt = kind.build(TmConfig::small());
            assert_eq!(rt.kind(), kind);
            let system = Arc::clone(rt.system());
            let th = system.register_thread();
            let v = TmVar::<u64>::alloc(&system, 5);
            let got = rt.atomically(&th, |tx| {
                let x = v.get(tx)?;
                v.set(tx, x * 2)?;
                Ok(x)
            });
            assert_eq!(got, 5, "{kind}");
            assert_eq!(v.load_direct(&system), 10, "{kind}");
        }
    }

    #[test]
    fn as_dyn_exposes_the_same_system() {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        assert!(Arc::ptr_eq(rt.as_dyn().system(), AnyRuntime::system(&rt)));
    }

    #[test]
    fn exec_u64_via_trait_object_dispatches() {
        for kind in RuntimeKind::ALL {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(AnyRuntime::system(&rt));
            let th = system.register_thread();
            let v = TmVar::<u64>::alloc(&system, 41);
            let dynrt: &dyn TmRuntime = &rt;
            let got = dynrt.exec_u64(&th, &mut |tx| {
                let x = v.get(tx)?;
                v.set(tx, x + 1)?;
                Ok(x + 1)
            });
            assert_eq!(got, 42);
        }
    }
}
