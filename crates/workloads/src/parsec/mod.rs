//! Synthetic kernels reproducing the condition-synchronization structure of
//! the eight PARSEC applications the paper evaluates (§2.4.2, Figures
//! 2.6–2.8, Table 2.1).
//!
//! The real PARSEC sources, inputs and the transactional PARSEC port of Wang
//! et al. are not available offline, so — per the reproduction's substitution
//! rule — each application is replaced by a kernel that preserves what the
//! evaluation actually measures: the *coordination skeleton* (pipelines over
//! bounded queues, worker pools fed by a master, barrier-synchronized phases,
//! sliding-window dependencies), the number of distinct condition-
//! synchronization points (the parenthesised counts of Table 2.1), and a
//! compute-to-synchronization ratio large enough that, as in the paper,
//! synchronization cost does not dominate.
//!
//! Every kernel runs under all seven mechanisms: `Pthreads` uses locks and
//! condition variables (no transactions), the rest run their critical
//! sections as transactions on the selected runtime.

pub mod bodytrack;
pub mod common;
pub mod dedup;
pub mod facesim;
pub mod ferret;
pub mod fluidanimate;
pub mod raytrace;
pub mod streamcluster;
pub mod x264;

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use condsync::Mechanism;
use tm_core::StatsSnapshot;

use crate::runtime::RuntimeKind;

/// The eight PARSEC applications that use condition variables (Table 2.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ParsecApp {
    /// Body tracking: per-frame worker pool (5 sync points).
    Bodytrack,
    /// Deduplication: three-stage pipeline ending in serialized I/O
    /// (3 sync points).
    Dedup,
    /// Face simulation: fork/join physics phases (7 sync points).
    Facesim,
    /// Content-based similarity search: four-stage pipeline (2 sync points).
    Ferret,
    /// Fluid dynamics: barrier-separated grid phases (4 sync points).
    Fluidanimate,
    /// Real-time raytracing: tile task queue per frame (3 sync points).
    Raytrace,
    /// Online clustering: barrier-heavy evaluation rounds (5 sync points).
    Streamcluster,
    /// H.264 encoding: sliding-window frame dependencies (1 sync point).
    X264,
}

impl ParsecApp {
    /// All eight applications, in the order the paper's figures list them.
    pub const ALL: [ParsecApp; 8] = [
        ParsecApp::Bodytrack,
        ParsecApp::Dedup,
        ParsecApp::Facesim,
        ParsecApp::Ferret,
        ParsecApp::Fluidanimate,
        ParsecApp::Raytrace,
        ParsecApp::Streamcluster,
        ParsecApp::X264,
    ];

    /// The lower-case name used in figure labels.
    pub fn label(self) -> &'static str {
        match self {
            ParsecApp::Bodytrack => "bodytrack",
            ParsecApp::Dedup => "dedup",
            ParsecApp::Facesim => "facesim",
            ParsecApp::Ferret => "ferret",
            ParsecApp::Fluidanimate => "fluidanimate",
            ParsecApp::Raytrace => "raytrace",
            ParsecApp::Streamcluster => "streamcluster",
            ParsecApp::X264 => "x264",
        }
    }

    /// Number of distinct condition-synchronization points in the original
    /// application (the parenthesised counts in Table 2.1).
    pub fn sync_points(self) -> usize {
        match self {
            ParsecApp::Bodytrack => 5,
            ParsecApp::Dedup => 3,
            ParsecApp::Facesim => 7,
            ParsecApp::Ferret => 2,
            ParsecApp::Fluidanimate => 4,
            ParsecApp::Raytrace => 3,
            ParsecApp::Streamcluster => 5,
            ParsecApp::X264 => 1,
        }
    }

    /// Thread counts this application supports.  A few PARSEC apps only run
    /// for even or power-of-two thread counts; the paper notes the same.
    pub fn supported_threads(self) -> &'static [usize] {
        match self {
            // Pipeline apps need at least one thread per stage but otherwise
            // take any count.
            ParsecApp::Dedup | ParsecApp::Ferret => &[1, 2, 3, 4, 5, 6, 7, 8],
            // Grid/partitioned apps: powers of two only.
            ParsecApp::Fluidanimate | ParsecApp::Facesim => &[1, 2, 4, 8],
            // Streamcluster: even thread counts (plus 1).
            ParsecApp::Streamcluster => &[1, 2, 4, 6, 8],
            _ => &[1, 2, 3, 4, 5, 6, 7, 8],
        }
    }

    /// Runs this application's kernel.
    pub fn run(self, params: &KernelParams) -> KernelResult {
        match self {
            ParsecApp::Bodytrack => bodytrack::run(params),
            ParsecApp::Dedup => dedup::run(params),
            ParsecApp::Facesim => facesim::run(params),
            ParsecApp::Ferret => ferret::run(params),
            ParsecApp::Fluidanimate => fluidanimate::run(params),
            ParsecApp::Raytrace => raytrace::run(params),
            ParsecApp::Streamcluster => streamcluster::run(params),
            ParsecApp::X264 => x264::run(params),
        }
    }
}

impl fmt::Display for ParsecApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ParsecApp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase();
        ParsecApp::ALL
            .into_iter()
            .find(|a| a.label() == norm)
            .ok_or_else(|| format!("unknown PARSEC app: {s}"))
    }
}

/// How much work a kernel performs; scales both item counts and per-item
/// compute so quick test runs and full benchmark runs use the same code.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// A few hundred work items — used by unit and integration tests.
    Test,
    /// A few thousand work items — used by the default figure binaries.
    Small,
    /// Tens of thousands of work items — closest to the paper's inputs.
    Full,
}

impl Scale {
    /// Multiplier applied to each kernel's base item count.
    pub fn items_factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 8,
            Scale::Full => 64,
        }
    }

    /// Multiplier applied to per-item compute units.
    pub fn work_factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 4,
            Scale::Full => 16,
        }
    }
}

/// Parameters shared by every kernel run.
#[derive(Copy, Clone, Debug)]
pub struct KernelParams {
    /// Number of worker threads (the figures' x-axis, 1–8).
    pub threads: usize,
    /// Condition-synchronization mechanism under test.
    pub mechanism: Mechanism,
    /// Which TM runtime provides transactions (ignored for `Pthreads`).
    pub runtime: RuntimeKind,
    /// Work scale.
    pub scale: Scale,
}

impl KernelParams {
    /// Creates kernel parameters.
    pub fn new(threads: usize, mechanism: Mechanism, runtime: RuntimeKind, scale: Scale) -> Self {
        assert!(threads >= 1, "kernels need at least one thread");
        KernelParams {
            threads,
            mechanism,
            runtime,
            scale,
        }
    }

    /// True if this combination is valid (Retry-Orig cannot run on HTM).
    pub fn is_valid(&self) -> bool {
        self.mechanism != Mechanism::RetryOrig || self.runtime.supports_retry_orig()
    }
}

/// Result of one kernel run.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Which application ran.
    pub app: ParsecApp,
    /// The parameters used.
    pub params: KernelParams,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Number of work items processed (for sanity checks).
    pub work_items: u64,
    /// Deterministic checksum over the processed work; identical across
    /// mechanisms and runtimes for the same (app, threads, scale).
    pub checksum: u64,
    /// Aggregated transaction statistics (zero for Pthreads).
    pub stats: StatsSnapshot,
}

impl KernelResult {
    /// Wall-clock seconds (the figures' y-axis).
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_labels_and_sync_points_match_table_2_1() {
        assert_eq!(ParsecApp::ALL.len(), 8);
        let total: usize = ParsecApp::ALL.iter().map(|a| a.sync_points()).sum();
        assert_eq!(total, 5 + 3 + 7 + 2 + 4 + 3 + 5 + 1);
        assert_eq!(ParsecApp::Bodytrack.label(), "bodytrack");
        assert_eq!(ParsecApp::X264.sync_points(), 1);
        assert_eq!(ParsecApp::Facesim.sync_points(), 7);
    }

    #[test]
    fn labels_round_trip_through_fromstr() {
        for app in ParsecApp::ALL {
            assert_eq!(app.label().parse::<ParsecApp>().unwrap(), app);
        }
        assert!("quake".parse::<ParsecApp>().is_err());
    }

    #[test]
    fn supported_threads_are_sane() {
        for app in ParsecApp::ALL {
            let ts = app.supported_threads();
            assert!(ts.contains(&1), "{app} must run single-threaded");
            assert!(ts.contains(&8), "{app} must run at 8 threads");
            assert!(
                ts.windows(2).all(|w| w[0] < w[1]),
                "{app} thread list sorted"
            );
        }
    }

    #[test]
    fn scale_factors_are_monotonic() {
        assert!(Scale::Test.items_factor() < Scale::Small.items_factor());
        assert!(Scale::Small.items_factor() < Scale::Full.items_factor());
        assert!(Scale::Test.work_factor() <= Scale::Small.work_factor());
    }

    #[test]
    fn params_validity_excludes_retry_orig_on_htm() {
        let bad = KernelParams::new(2, Mechanism::RetryOrig, RuntimeKind::Htm, Scale::Test);
        assert!(!bad.is_valid());
        let ok = KernelParams::new(2, Mechanism::RetryOrig, RuntimeKind::EagerStm, Scale::Test);
        assert!(ok.is_valid());
        let ok2 = KernelParams::new(2, Mechanism::Retry, RuntimeKind::Htm, Scale::Test);
        assert!(ok2.is_valid());
    }
}
