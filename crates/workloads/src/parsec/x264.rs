//! `x264` kernel: sliding-window frame dependencies.
//!
//! The real encoder parallelises across frames: a thread encoding frame *i*
//! may only process macroblock row *r* once the reference frame *i − 1* has
//! encoded a few rows beyond *r* (motion search range).  Threads therefore
//! wait on a per-frame progress counter of their reference frame — the single
//! condition-synchronization point Table 2.1 counts for x264.
//!
//! The kernel encodes `FRAMES` frames of [`ROWS`] rows each.  Frames are
//! assigned to threads round-robin; encoding row *r* of frame *i* first waits
//! until `progress[i-1] ≥ min(r + LOOKAHEAD, ROWS)`, performs the row's
//! [`compute`] work, and then bumps `progress[i]`.  The checksum folds every
//! row's result.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;

use super::common::{compute, fold, LockEvent, ThresholdEvent};
use super::{KernelParams, KernelResult, ParsecApp};

/// Macroblock rows per frame.
pub const ROWS: u64 = 16;

/// How many rows ahead of the dependent row the reference frame must be
/// (the motion-search vertical range).
pub const LOOKAHEAD: u64 = 2;

const BASE_FRAMES: u64 = 4;
const ROW_UNITS: u64 = 30;

fn frames(params: &KernelParams) -> u64 {
    // At least one frame per thread so every thread participates.
    (BASE_FRAMES * params.scale.items_factor()).max(params.threads as u64)
}

fn work(params: &KernelParams) -> u64 {
    ROW_UNITS * params.scale.work_factor()
}

fn encode_row(units: u64, frame: u64, row: u64) -> u64 {
    compute(units, frame * ROWS + row + 1)
}

/// Reference checksum, independent of mechanism/runtime/threads (the frame
/// count rounds up to the thread count, so it does depend on `threads` for
/// very small scales — the figure binaries keep the scale large enough that
/// it does not).
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let mut sum = 0u64;
    for f in 0..frames(params) {
        for r in 0..ROWS {
            sum = fold(sum, encode_row(units, f, r));
        }
    }
    sum
}

/// Runs the x264 kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::X264,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n_frames = frames(params);
    let units = work(params);

    // One progress counter per frame, allocated up front.
    let progress: Arc<Vec<ThresholdEvent>> = Arc::new(
        (0..n_frames)
            .map(|_| ThresholdEvent::new(&system, 0))
            .collect(),
    );
    let checksum = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for tid in 0..params.threads {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let progress = Arc::clone(&progress);
            let checksum = Arc::clone(&checksum);
            let threads = params.threads as u64;
            scope.spawn(move || {
                let th = system.register_thread();
                let mut local = 0u64;
                let mut frame = tid as u64;
                while frame < n_frames {
                    for row in 0..ROWS {
                        if frame > 0 {
                            let needed = (row + LOOKAHEAD).min(ROWS);
                            progress[(frame - 1) as usize]
                                .wait_at_least(&rt, &th, mechanism, needed);
                        }
                        local = fold(local, encode_row(units, frame, row));
                        rt.atomically(&th, |tx| progress[frame as usize].add(tx, 1).map(|_| ()));
                    }
                    frame += threads;
                }
                checksum.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    (
        checksum.load(Ordering::Relaxed),
        n_frames * ROWS,
        system.stats(),
    )
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n_frames = frames(params);
    let units = work(params);

    let progress: Arc<Vec<LockEvent>> =
        Arc::new((0..n_frames).map(|_| LockEvent::new(0)).collect());
    let checksum = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for tid in 0..params.threads {
            let progress = Arc::clone(&progress);
            let checksum = Arc::clone(&checksum);
            let threads = params.threads as u64;
            scope.spawn(move || {
                let mut local = 0u64;
                let mut frame = tid as u64;
                while frame < n_frames {
                    for row in 0..ROWS {
                        if frame > 0 {
                            let needed = (row + LOOKAHEAD).min(ROWS);
                            progress[(frame - 1) as usize].wait_at_least(needed);
                        }
                        local = fold(local, encode_row(units, frame, row));
                        progress[frame as usize].add(1);
                    }
                    frame += threads;
                }
                checksum.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    (
        checksum.load(Ordering::Relaxed),
        n_frames * ROWS,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn sliding_window_mechanisms_agree() {
        for mech in [
            Mechanism::Await,
            Mechanism::WaitPred,
            Mechanism::TmCondVar,
            Mechanism::Restart,
        ] {
            let p = params(3, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn single_thread_never_waits_on_other_frames() {
        let p = params(1, Mechanism::Retry, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.checksum, expected_checksum(&p));
        // Frame i-1 is always complete before frame i starts, so the waits
        // are all satisfied on first check and the thread never sleeps.
        assert_eq!(r.stats.sleeps, 0);
    }

    #[test]
    fn frame_count_scales_with_threads_when_tiny() {
        let p = params(8, Mechanism::Retry, RuntimeKind::EagerStm);
        assert!(frames(&p) >= 8);
    }
}
