//! `dedup` kernel: a compression pipeline ending in serialized output.
//!
//! The real application splits an input stream into chunks, deduplicates and
//! compresses them in parallel, and writes the results from a single output
//! stage that performs file I/O inside its critical section.  Table 2.1
//! counts **3** condition-synchronization points (the three inter-stage
//! queues).  The paper observes that dedup performs very poorly under TM
//! because the runtime forbids concurrency while a transaction that has
//! performed I/O is in flight.
//!
//! The kernel reproduces that structure: a fragmenting stage, a compressing
//! stage, and a single writer whose per-chunk "I/O" work is performed inside
//! its transaction (the closest offline stand-in for an irrevocable I/O
//! transaction: it holds the output queue's metadata for the duration of the
//! simulated write, serializing the pipeline's tail exactly where the real
//! application serializes).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{PthreadBuffer, TmBoundedBuffer};

use super::common::{compute, fold, split_stage_threads};
use super::{KernelParams, KernelResult, ParsecApp};

const POISON: u64 = u64::MAX;
const QUEUE_CAP: usize = 8;
const BASE_CHUNKS: u64 = 40;
const FRAGMENT_UNITS: u64 = 30;
const COMPRESS_UNITS: u64 = 80;
/// Simulated I/O cost per chunk in the writer stage.
const WRITE_UNITS: u64 = 50;

fn chunks(params: &KernelParams) -> u64 {
    BASE_CHUNKS * params.scale.items_factor()
}

fn work(params: &KernelParams, base: u64) -> u64 {
    base * params.scale.work_factor()
}

/// Reference checksum, independent of mechanism/runtime/threads.
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let mut sum = 0u64;
    for i in 0..chunks(params) {
        let frag = compute(work(params, FRAGMENT_UNITS), i + 1);
        let comp = compute(work(params, COMPRESS_UNITS), frag);
        let written = compute(work(params, WRITE_UNITS), comp);
        sum = fold(sum, written);
    }
    sum
}

/// Runs the dedup kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Dedup,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n = chunks(params);
    let frag_units = work(params, FRAGMENT_UNITS);
    let comp_units = work(params, COMPRESS_UNITS);
    let write_units = work(params, WRITE_UNITS);

    let frag_q = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let comp_q = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let out_q = TmBoundedBuffer::new(&system, QUEUE_CAP);

    // The writer stage is always a single thread (as in the application);
    // the remaining threads are split between fragmenting and compressing.
    let stage_threads = split_stage_threads(params.threads, 2);
    let (frag_workers, comp_workers) = (stage_threads[0], stage_threads[1]);

    let frag_done = Arc::new(AtomicUsize::new(0));
    let comp_done = Arc::new(AtomicUsize::new(0));

    let checksum = std::thread::scope(|scope| {
        // Driver: stream the chunks in.
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let frag_q = Arc::clone(&frag_q);
            scope.spawn(move || {
                let th = system.register_thread();
                for i in 0..n {
                    rt.atomically(&th, |tx| frag_q.produce(mechanism, tx, i + 1));
                }
                for _ in 0..frag_workers {
                    rt.atomically(&th, |tx| frag_q.produce(mechanism, tx, POISON));
                }
            });
        }

        // Stage 1: fragment / deduplicate.
        for _ in 0..frag_workers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let frag_q = Arc::clone(&frag_q);
            let comp_q = Arc::clone(&comp_q);
            let frag_done = Arc::clone(&frag_done);
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let chunk = rt.atomically(&th, |tx| frag_q.consume(mechanism, tx));
                    if chunk == POISON {
                        break;
                    }
                    let frag = compute(frag_units, chunk);
                    rt.atomically(&th, |tx| comp_q.produce(mechanism, tx, frag));
                }
                if frag_done.fetch_add(1, Ordering::AcqRel) + 1 == frag_workers {
                    for _ in 0..comp_workers {
                        rt.atomically(&th, |tx| comp_q.produce(mechanism, tx, POISON));
                    }
                }
            });
        }

        // Stage 2: compress.
        for _ in 0..comp_workers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let comp_q = Arc::clone(&comp_q);
            let out_q = Arc::clone(&out_q);
            let comp_done = Arc::clone(&comp_done);
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let frag = rt.atomically(&th, |tx| comp_q.consume(mechanism, tx));
                    if frag == POISON {
                        break;
                    }
                    let comp = compute(comp_units, frag);
                    rt.atomically(&th, |tx| out_q.produce(mechanism, tx, comp));
                }
                if comp_done.fetch_add(1, Ordering::AcqRel) + 1 == comp_workers {
                    // Exactly one poison: there is a single writer.
                    rt.atomically(&th, |tx| out_q.produce(mechanism, tx, POISON));
                }
            });
        }

        // Stage 3: the single writer.  The simulated I/O happens *inside* the
        // transaction, reproducing the serialization the paper reports.
        let writer = {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let out_q = Arc::clone(&out_q);
            scope.spawn(move || {
                let th = system.register_thread();
                let mut local = 0u64;
                loop {
                    let written = rt.atomically(&th, |tx| {
                        let comp = out_q.consume(mechanism, tx)?;
                        if comp == POISON {
                            return Ok(POISON);
                        }
                        // Simulated file write, inside the critical section as
                        // in the real application.
                        Ok(compute(write_units, comp))
                    });
                    if written == POISON {
                        break;
                    }
                    local = fold(local, written);
                }
                local
            })
        };
        writer.join().expect("writer thread")
    });

    (checksum, n, system.stats())
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n = chunks(params);
    let frag_units = work(params, FRAGMENT_UNITS);
    let comp_units = work(params, COMPRESS_UNITS);
    let write_units = work(params, WRITE_UNITS);

    let frag_q = Arc::new(PthreadBuffer::new(QUEUE_CAP));
    let comp_q = Arc::new(PthreadBuffer::new(QUEUE_CAP));
    let out_q = Arc::new(PthreadBuffer::new(QUEUE_CAP));

    let stage_threads = split_stage_threads(params.threads, 2);
    let (frag_workers, comp_workers) = (stage_threads[0], stage_threads[1]);
    let frag_done = Arc::new(AtomicUsize::new(0));
    let comp_done = Arc::new(AtomicUsize::new(0));

    let checksum = std::thread::scope(|scope| {
        {
            let frag_q = Arc::clone(&frag_q);
            scope.spawn(move || {
                for i in 0..n {
                    frag_q.produce(i + 1);
                }
                for _ in 0..frag_workers {
                    frag_q.produce(POISON);
                }
            });
        }
        for _ in 0..frag_workers {
            let frag_q = Arc::clone(&frag_q);
            let comp_q = Arc::clone(&comp_q);
            let frag_done = Arc::clone(&frag_done);
            scope.spawn(move || {
                loop {
                    let chunk = frag_q.consume();
                    if chunk == POISON {
                        break;
                    }
                    comp_q.produce(compute(frag_units, chunk));
                }
                if frag_done.fetch_add(1, Ordering::AcqRel) + 1 == frag_workers {
                    for _ in 0..comp_workers {
                        comp_q.produce(POISON);
                    }
                }
            });
        }
        for _ in 0..comp_workers {
            let comp_q = Arc::clone(&comp_q);
            let out_q = Arc::clone(&out_q);
            let comp_done = Arc::clone(&comp_done);
            scope.spawn(move || {
                loop {
                    let frag = comp_q.consume();
                    if frag == POISON {
                        break;
                    }
                    out_q.produce(compute(comp_units, frag));
                }
                if comp_done.fetch_add(1, Ordering::AcqRel) + 1 == comp_workers {
                    out_q.produce(POISON);
                }
            });
        }
        let writer = {
            let out_q = Arc::clone(&out_q);
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    let comp = out_q.consume();
                    if comp == POISON {
                        break;
                    }
                    local = fold(local, compute(write_units, comp));
                }
                local
            })
        };
        writer.join().expect("writer thread")
    });

    (checksum, n, tm_core::StatsSnapshot::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_and_waitpred_match_reference_on_eager() {
        for mech in [Mechanism::Retry, Mechanism::WaitPred, Mechanism::Await] {
            let p = params(4, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn htm_and_lazy_agree_with_reference() {
        for kind in [RuntimeKind::LazyStm, RuntimeKind::Htm] {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn tmcondvar_and_restart_complete() {
        for mech in [Mechanism::TmCondVar, Mechanism::Restart] {
            let p = params(2, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }
}
