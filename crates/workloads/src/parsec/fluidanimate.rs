//! `fluidanimate` kernel: barrier-separated grid phases with contended
//! border-cell updates.
//!
//! The real application simulates incompressible fluid with smoothed-particle
//! hydrodynamics: every timestep runs a fixed sequence of phases (rebuild
//! grid, compute densities, compute forces, advance particles), each ending
//! in a barrier, and neighbouring partitions update shared *border cells*
//! under fine-grained locks (transactions in the TM port).  Table 2.1 counts
//! **4** condition-synchronization points, matching the four phase barriers.
//!
//! The kernel runs `TIMESTEPS` timesteps of [`PHASES`] phases.  In each phase
//! every thread integrates its particle partition ([`compute`]) and
//! transactionally adds its contribution to a small, shared set of border
//! cells — the contended part — then waits at the phase barrier.  The
//! checksum is the sum of the border cells after the last timestep.

use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::lock::Mutex;
use tm_core::TmConfig;
use tm_sync::{TmBarrier, TmCounter};

use super::common::{compute, fold, split_evenly};
use super::{KernelParams, KernelResult, ParsecApp};

/// Phases per timestep; matches the application's 4 sync points.
pub const PHASES: u64 = 4;

/// Number of shared border cells all threads contend on.
pub const BORDER_CELLS: usize = 8;

const BASE_TIMESTEPS: u64 = 3;
const PARTICLES: u64 = 64;
const PARTICLE_UNITS: u64 = 20;
/// Border-cell contributions are truncated to 32 bits so a cell can absorb
/// every addition of a full-scale run without overflowing.
const CELL_MASK: u64 = 0xFFFF_FFFF;

fn timesteps(params: &KernelParams) -> u64 {
    BASE_TIMESTEPS * params.scale.items_factor()
}

fn work(params: &KernelParams) -> u64 {
    PARTICLE_UNITS * params.scale.work_factor()
}

/// The contribution a thread with particle range `range` makes to border
/// cell `cell` in (timestep, phase).
fn contribution(units: u64, step: u64, phase: u64, range: (u64, u64)) -> (usize, u64) {
    let mut local = 0u64;
    for particle in range.0..range.1 {
        local = fold(local, compute(units, particle + 7 + step * PHASES + phase));
    }
    // The target border cell depends on the phase and the partition start, so
    // different threads collide on the same cells in different phases.
    let cell = ((phase + range.0) as usize) % BORDER_CELLS;
    (cell, local & CELL_MASK)
}

/// Reference checksum (depends on the thread count through the partition
/// boundaries, but not on the mechanism or runtime).
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);
    let mut cells = [0u64; BORDER_CELLS];
    for step in 0..timesteps(params) {
        for phase in 0..PHASES {
            for &range in &ranges {
                let (cell, value) = contribution(units, step, phase, range);
                cells[cell] += value;
            }
        }
    }
    cells.iter().fold(0u64, |acc, &c| fold(acc, c))
}

/// Runs the fluidanimate kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Fluidanimate,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let steps = timesteps(params);
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);

    let barrier = Arc::new(TmBarrier::new(&system, params.threads as u64));
    let cells: Arc<Vec<TmCounter>> = Arc::new(
        (0..BORDER_CELLS)
            .map(|_| TmCounter::new(&system, 0))
            .collect(),
    );

    std::thread::scope(|scope| {
        for &range in &ranges {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let barrier = Arc::clone(&barrier);
            let cells = Arc::clone(&cells);
            scope.spawn(move || {
                let th = system.register_thread();
                for step in 0..steps {
                    for phase in 0..PHASES {
                        let (cell, value) = contribution(units, step, phase, range);
                        rt.atomically(&th, |tx| cells[cell].add(tx, value).map(|_| ()));
                        barrier.wait(&rt, &th, mechanism);
                    }
                }
            });
        }
    });

    let checksum = cells
        .iter()
        .fold(0u64, |acc, c| fold(acc, c.load_direct(&system)));
    (checksum, steps * PHASES * PARTICLES, system.stats())
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let steps = timesteps(params);
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);

    let barrier = Arc::new(std::sync::Barrier::new(params.threads));
    // The application protects border cells with an array of fine-grained
    // locks; one mutex per cell reproduces that.
    let cells: Arc<Vec<Mutex<u64>>> = Arc::new((0..BORDER_CELLS).map(|_| Mutex::new(0)).collect());

    std::thread::scope(|scope| {
        for &range in &ranges {
            let barrier = Arc::clone(&barrier);
            let cells = Arc::clone(&cells);
            scope.spawn(move || {
                for step in 0..steps {
                    for phase in 0..PHASES {
                        let (cell, value) = contribution(units, step, phase, range);
                        *cells[cell].lock() += value;
                        barrier.wait();
                    }
                }
            });
        }
    });

    let checksum = cells.iter().fold(0u64, |acc, c| fold(acc, *c.lock()));
    (
        checksum,
        steps * PHASES * PARTICLES,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn contended_cells_agree_across_mechanisms() {
        for mech in [Mechanism::Await, Mechanism::WaitPred, Mechanism::Restart] {
            let p = params(4, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn contribution_targets_every_cell_over_a_timestep() {
        // With four phases and several partitions the writes spread over
        // multiple cells, which is what creates the contention the kernel is
        // meant to exercise.
        let ranges = split_evenly(PARTICLES, 4);
        let mut hit = std::collections::HashSet::new();
        for phase in 0..PHASES {
            for &range in &ranges {
                hit.insert(contribution(10, 0, phase, range).0);
            }
        }
        assert!(hit.len() >= 4);
    }
}
