//! `bodytrack` kernel: a per-frame worker pool.
//!
//! The real application tracks a human body through a sequence of video
//! frames; for every frame the main thread fans a set of particle-evaluation
//! tasks out to a persistent worker pool and waits for all of them to
//! complete before moving to the next frame.  Table 2.1 counts **5**
//! condition-synchronization points (task queue not-empty / not-full, frame
//! completion, pool start and pool shutdown).
//!
//! The kernel keeps the same skeleton: a persistent pool of workers pulls
//! tasks from a bounded queue, folds the per-task result into a shared
//! transactional accumulator, and bumps a frame-completion event the main
//! thread waits on; the main thread then reads and resets the accumulator
//! and issues the next frame.

use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{PthreadBuffer, TmBoundedBuffer, TmCounter};

use super::common::{compute, fold, LockEvent, ThresholdEvent};
use super::{KernelParams, KernelResult, ParsecApp};

const POISON: u64 = u64::MAX;
const QUEUE_CAP: usize = 32;
const BASE_FRAMES: u64 = 6;
const TASKS_PER_FRAME: u64 = 24;
const TASK_UNITS: u64 = 70;
/// Particle weights are reduced to 32 bits before accumulation so that a
/// frame's sum (24 tasks) can never overflow the 64-bit accumulator.
const WEIGHT_MASK: u64 = 0xFFFF_FFFF;

fn frames(params: &KernelParams) -> u64 {
    BASE_FRAMES * params.scale.items_factor()
}

fn work(params: &KernelParams) -> u64 {
    TASK_UNITS * params.scale.work_factor()
}

/// Encodes a (frame, task) pair as the task token pushed through the queue.
fn encode_task(frame: u64, task: u64) -> u64 {
    frame * TASKS_PER_FRAME + task + 1
}

/// Reference checksum, independent of mechanism/runtime/threads.
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let mut sum = 0u64;
    for f in 0..frames(params) {
        let mut frame_sum = 0u64;
        for t in 0..TASKS_PER_FRAME {
            frame_sum = fold(frame_sum, compute(units, encode_task(f, t)) & WEIGHT_MASK);
        }
        // The main thread folds each frame's estimate into the global model.
        sum = fold(sum, frame_sum ^ f);
    }
    sum
}

/// Runs the bodytrack kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Bodytrack,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n_frames = frames(params);
    let units = work(params);

    let tasks = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let done = Arc::new(ThresholdEvent::new(&system, 0));
    // The particle-weight accumulator every worker updates transactionally.
    let accum = Arc::new(TmCounter::new(&system, 0));

    let checksum = std::thread::scope(|scope| {
        // Worker pool.
        for _ in 0..params.threads {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let tasks = Arc::clone(&tasks);
            let done = Arc::clone(&done);
            let accum = Arc::clone(&accum);
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let token = rt.atomically(&th, |tx| tasks.consume(mechanism, tx));
                    if token == POISON {
                        break;
                    }
                    let result = compute(units, token) & WEIGHT_MASK;
                    // Fold the particle weight into the shared accumulator and
                    // announce completion in one atomic step.
                    rt.atomically(&th, |tx| {
                        accum.add(tx, result)?;
                        done.add(tx, 1).map(|_| ())
                    });
                }
            });
        }

        // Main thread: issue frames, wait for completion, collect the model.
        let main = {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let tasks = Arc::clone(&tasks);
            let done = Arc::clone(&done);
            let accum = Arc::clone(&accum);
            let threads = params.threads;
            scope.spawn(move || {
                let th = system.register_thread();
                let mut sum = 0u64;
                for f in 0..n_frames {
                    for t in 0..TASKS_PER_FRAME {
                        let token = encode_task(f, t);
                        rt.atomically(&th, |tx| tasks.produce(mechanism, tx, token));
                    }
                    done.wait_at_least(&rt, &th, mechanism, TASKS_PER_FRAME);
                    // Quiescent point: all tasks of this frame are complete and
                    // no worker holds work, so direct resets are safe.
                    let frame_sum = accum.load_direct(&system);
                    accum.store_direct(&system, 0);
                    done.reset_direct(&system, 0);
                    sum = fold(sum, frame_sum ^ f);
                }
                // Shut the pool down.
                for _ in 0..threads {
                    rt.atomically(&th, |tx| tasks.produce(mechanism, tx, POISON));
                }
                sum
            })
        };
        main.join().expect("main thread")
    });

    (checksum, n_frames * TASKS_PER_FRAME, system.stats())
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n_frames = frames(params);
    let units = work(params);

    let tasks = Arc::new(PthreadBuffer::new(QUEUE_CAP));
    let done = Arc::new(LockEvent::new(0));
    let accum = Arc::new(LockEvent::new(0));

    let checksum = std::thread::scope(|scope| {
        for _ in 0..params.threads {
            let tasks = Arc::clone(&tasks);
            let done = Arc::clone(&done);
            let accum = Arc::clone(&accum);
            scope.spawn(move || loop {
                let token = tasks.consume();
                if token == POISON {
                    break;
                }
                accum.add(compute(units, token) & WEIGHT_MASK);
                done.add(1);
            });
        }
        let main = {
            let tasks = Arc::clone(&tasks);
            let done = Arc::clone(&done);
            let accum = Arc::clone(&accum);
            let threads = params.threads;
            scope.spawn(move || {
                let mut sum = 0u64;
                for f in 0..n_frames {
                    for t in 0..TASKS_PER_FRAME {
                        tasks.produce(encode_task(f, t));
                    }
                    done.wait_at_least(TASKS_PER_FRAME);
                    let frame_sum = accum.value();
                    accum.reset(0);
                    done.reset(0);
                    sum = fold(sum, frame_sum ^ f);
                }
                for _ in 0..threads {
                    tasks.produce(POISON);
                }
                sum
            })
        };
        main.join().expect("main thread")
    });

    (
        checksum,
        n_frames * TASKS_PER_FRAME,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn lock_accumulator_wraps_like_the_tm_counter() {
        // LockEvent::add uses wrapping counter semantics only below u64::MAX;
        // task results are large, so confirm the checksum math stays in u64.
        let p = params(2, Mechanism::Pthreads, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn await_waitpred_and_condvar_match_reference() {
        for mech in [Mechanism::Await, Mechanism::WaitPred, Mechanism::TmCondVar] {
            let p = params(3, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn single_worker_matches_reference() {
        let p = params(1, Mechanism::Restart, RuntimeKind::LazyStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }
}
