//! `raytrace` kernel: per-frame tile rendering from a shared work queue.
//!
//! The real application renders frames by splitting the screen into tiles;
//! worker threads repeatedly take the next tile from a shared queue, render
//! it, and the frame is presented once every tile is done.  Table 2.1 counts
//! **3** condition-synchronization points (tile queue not-empty / not-full
//! and frame completion).
//!
//! The kernel renders `FRAMES` frames of `TILES_PER_FRAME` tiles.  Rendering
//! a tile is a [`compute`] call; its result is folded into a global
//! transactional "rays traced" counter, which doubles as the run's checksum.

use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{PthreadBuffer, TmBoundedBuffer, TmCounter};

use super::common::{compute, LockEvent, ThresholdEvent};
use super::{KernelParams, KernelResult, ParsecApp};

const POISON: u64 = u64::MAX;
const QUEUE_CAP: usize = 16;
const BASE_FRAMES: u64 = 4;
const TILES_PER_FRAME: u64 = 32;
const TILE_UNITS: u64 = 60;
/// Per-tile results are truncated to 32 bits so the global counter cannot
/// overflow even at full scale (2^13 tiles × 2^32 < 2^45).
const RAY_MASK: u64 = 0xFFFF_FFFF;

fn frames(params: &KernelParams) -> u64 {
    BASE_FRAMES * params.scale.items_factor()
}

fn work(params: &KernelParams) -> u64 {
    TILE_UNITS * params.scale.work_factor()
}

fn encode_tile(frame: u64, tile: u64) -> u64 {
    frame * TILES_PER_FRAME + tile + 1
}

/// Reference checksum, independent of mechanism/runtime/threads.
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let mut total = 0u64;
    for f in 0..frames(params) {
        for t in 0..TILES_PER_FRAME {
            total += compute(units, encode_tile(f, t)) & RAY_MASK;
        }
    }
    total
}

/// Runs the raytrace kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Raytrace,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n_frames = frames(params);
    let units = work(params);

    let tiles = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let frame_done = Arc::new(ThresholdEvent::new(&system, 0));
    let rays = Arc::new(TmCounter::new(&system, 0));

    std::thread::scope(|scope| {
        for _ in 0..params.threads {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let tiles = Arc::clone(&tiles);
            let frame_done = Arc::clone(&frame_done);
            let rays = Arc::clone(&rays);
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let tile = rt.atomically(&th, |tx| tiles.consume(mechanism, tx));
                    if tile == POISON {
                        break;
                    }
                    let rendered = compute(units, tile) & RAY_MASK;
                    rt.atomically(&th, |tx| {
                        rays.add(tx, rendered)?;
                        frame_done.add(tx, 1).map(|_| ())
                    });
                }
            });
        }

        // The display/driver thread.
        let rt_main = rt.clone();
        let system_main = Arc::clone(&system);
        let tiles_main = Arc::clone(&tiles);
        let frame_done_main = Arc::clone(&frame_done);
        let threads = params.threads;
        scope.spawn(move || {
            let th = system_main.register_thread();
            for f in 0..n_frames {
                for t in 0..TILES_PER_FRAME {
                    let token = encode_tile(f, t);
                    rt_main.atomically(&th, |tx| tiles_main.produce(mechanism, tx, token));
                }
                frame_done_main.wait_at_least(&rt_main, &th, mechanism, TILES_PER_FRAME);
                // All tiles committed and no new work exists: safe to reset.
                frame_done_main.reset_direct(&system_main, 0);
            }
            for _ in 0..threads {
                rt_main.atomically(&th, |tx| tiles_main.produce(mechanism, tx, POISON));
            }
        });
    });

    (
        rays.load_direct(&system),
        n_frames * TILES_PER_FRAME,
        system.stats(),
    )
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n_frames = frames(params);
    let units = work(params);

    let tiles = Arc::new(PthreadBuffer::new(QUEUE_CAP));
    let frame_done = Arc::new(LockEvent::new(0));
    let rays = Arc::new(LockEvent::new(0));

    std::thread::scope(|scope| {
        for _ in 0..params.threads {
            let tiles = Arc::clone(&tiles);
            let frame_done = Arc::clone(&frame_done);
            let rays = Arc::clone(&rays);
            scope.spawn(move || loop {
                let tile = tiles.consume();
                if tile == POISON {
                    break;
                }
                rays.add(compute(units, tile) & RAY_MASK);
                frame_done.add(1);
            });
        }
        let tiles_main = Arc::clone(&tiles);
        let frame_done_main = Arc::clone(&frame_done);
        let threads = params.threads;
        scope.spawn(move || {
            for f in 0..n_frames {
                for t in 0..TILES_PER_FRAME {
                    tiles_main.produce(encode_tile(f, t));
                }
                frame_done_main.wait_at_least(TILES_PER_FRAME);
                frame_done_main.reset(0);
            }
            for _ in 0..threads {
                tiles_main.produce(POISON);
            }
        });
    });

    (
        rays.value(),
        n_frames * TILES_PER_FRAME,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn remaining_mechanisms_match_reference_on_eager() {
        for mech in [
            Mechanism::Await,
            Mechanism::WaitPred,
            Mechanism::TmCondVar,
            Mechanism::RetryOrig,
            Mechanism::Restart,
        ] {
            let p = params(2, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn work_item_count_is_reported() {
        let p = params(2, Mechanism::Retry, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.work_items, frames(&p) * TILES_PER_FRAME);
        assert!(r.seconds() > 0.0);
    }
}
