//! `facesim` kernel: fork/join physics phases separated by barriers.
//!
//! The real application simulates a human face model; every frame runs a
//! fixed sequence of solver phases (force computation, several conjugate-
//! gradient sub-steps, position update), and all worker threads must finish
//! one phase before any may start the next.  Table 2.1 counts **7**
//! condition-synchronization points — one per phase hand-off.
//!
//! The kernel runs `ITERATIONS` frames of [`PHASES`] phases.  In each phase a
//! thread integrates its partition of particles ([`compute`]) and folds the
//! partial result into a shared transactional accumulator, then waits at a
//! barrier.  The final accumulator value is the checksum.

use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{TmBarrier, TmCounter};

use super::common::{compute, fold, split_evenly, LockEvent};
use super::{KernelParams, KernelResult, ParsecApp};

/// Solver phases per frame; matches the application's 7 sync points.
pub const PHASES: u64 = 7;

const BASE_ITERATIONS: u64 = 2;
const PARTICLES: u64 = 96;
const PARTICLE_UNITS: u64 = 25;
/// Partial sums are truncated before accumulation to keep the global counter
/// far from overflow (≤ 2^13 additions of 32-bit values at full scale).
const SUM_MASK: u64 = 0xFFFF_FFFF;

fn iterations(params: &KernelParams) -> u64 {
    BASE_ITERATIONS * params.scale.items_factor()
}

fn work(params: &KernelParams) -> u64 {
    PARTICLE_UNITS * params.scale.work_factor()
}

/// The partial sum a thread contributes for its particle range in a given
/// iteration and phase.
fn partition_sum(units: u64, iter: u64, phase: u64, range: (u64, u64)) -> u64 {
    let mut local = 0u64;
    for particle in range.0..range.1 {
        local = fold(local, compute(units, particle + 1 + iter * PHASES + phase));
    }
    local & SUM_MASK
}

/// Reference checksum for `params` (depends on the thread count, because the
/// partition boundaries do, but not on the mechanism or runtime).
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);
    let mut total = 0u64;
    for iter in 0..iterations(params) {
        for phase in 0..PHASES {
            for &range in &ranges {
                total += partition_sum(units, iter, phase, range);
            }
        }
    }
    total
}

/// Runs the facesim kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Facesim,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let iters = iterations(params);
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);

    let barrier = Arc::new(TmBarrier::new(&system, params.threads as u64));
    let accum = Arc::new(TmCounter::new(&system, 0));

    std::thread::scope(|scope| {
        for &range in &ranges {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let barrier = Arc::clone(&barrier);
            let accum = Arc::clone(&accum);
            scope.spawn(move || {
                let th = system.register_thread();
                for iter in 0..iters {
                    for phase in 0..PHASES {
                        let partial = partition_sum(units, iter, phase, range);
                        rt.atomically(&th, |tx| accum.add(tx, partial).map(|_| ()));
                        barrier.wait(&rt, &th, mechanism);
                    }
                }
            });
        }
    });

    (
        accum.load_direct(&system),
        iters * PHASES * PARTICLES,
        system.stats(),
    )
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let iters = iterations(params);
    let units = work(params);
    let ranges = split_evenly(PARTICLES, params.threads);

    let barrier = Arc::new(std::sync::Barrier::new(params.threads));
    let accum = Arc::new(LockEvent::new(0));

    std::thread::scope(|scope| {
        for &range in &ranges {
            let barrier = Arc::clone(&barrier);
            let accum = Arc::clone(&accum);
            scope.spawn(move || {
                for iter in 0..iters {
                    for phase in 0..PHASES {
                        accum.add(partition_sum(units, iter, phase, range));
                        barrier.wait();
                    }
                }
            });
        }
    });

    (
        accum.value(),
        iters * PHASES * PARTICLES,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn barrier_based_mechanisms_agree() {
        for mech in [
            Mechanism::Await,
            Mechanism::WaitPred,
            Mechanism::TmCondVar,
            Mechanism::Restart,
        ] {
            let p = params(4, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn single_thread_needs_no_waiting() {
        let p = params(1, Mechanism::Retry, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.checksum, expected_checksum(&p));
        // With one party the barrier's arrival transaction always releases
        // immediately, so the thread never sleeps.
        assert_eq!(r.stats.sleeps, 0);
    }

    #[test]
    fn partition_sums_cover_all_particles() {
        let ranges = split_evenly(PARTICLES, 3);
        let covered: u64 = ranges.iter().map(|(s, e)| e - s).sum();
        assert_eq!(covered, PARTICLES);
    }
}
