//! Shared building blocks for the PARSEC-like kernels.
//!
//! The kernels are built from three coordination primitives, each of which
//! exists in a transactional form (used by the six TM mechanisms) and a
//! lock-based form (used by the `Pthreads` baseline):
//!
//! * a bounded queue between pipeline stages
//!   ([`tm_sync::TmBoundedBuffer`] / [`tm_sync::PthreadBuffer`]),
//! * a threshold event — "wait until this counter reaches N" —
//!   ([`ThresholdEvent`] / [`LockEvent`]),
//! * a barrier ([`tm_sync::TmBarrier`] / [`std::sync::Barrier`]).
//!
//! plus [`compute`], a deterministic CPU-bound kernel standing in for the
//! applications' real per-item work (image processing, compression,
//! physics).  Determinism matters: every kernel produces a checksum that
//! must be identical across mechanisms and runtimes, which is how the tests
//! verify that changing the synchronization mechanism does not change
//! program behaviour.

use std::sync::Arc;
use std::sync::{Condvar, Mutex};

use condsync::{Mechanism, TmCondVar};
use tm_core::{ThreadCtx, TmSystem, Tx, TxResult};
use tm_sync::TmCounter;

use crate::runtime::AnyRuntime;

/// Deterministic CPU-bound work: `units` rounds of a 64-bit mix function
/// seeded by `seed`.  Returns a value that depends on every round, so the
/// compiler cannot elide the loop and callers can fold the result into their
/// checksums.
#[inline]
pub fn compute(units: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for i in 0..units {
        // splitmix64-style mixing; cheap but data-dependent.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15 ^ i);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
    }
    x
}

/// Order-independent checksum combination (addition), so checksums do not
/// depend on which thread processed which item first.
#[inline]
pub fn fold(checksum: u64, item: u64) -> u64 {
    checksum.wrapping_add(item)
}

/// A transactional "threshold event": a counter that threads bump and other
/// threads wait on until it reaches a target value.
///
/// This is the transactional analogue of the `count + condvar` idiom that
/// PARSEC's thread pools and frame schedulers use (e.g. bodytrack's
/// `WorkerGroup`, raytrace's frame completion counter).  It supports every
/// mechanism: the paper's three constructs and `Retry-Orig`/`Restart` wait by
/// descheduling or restarting, and `TMCondVar` waits on an embedded
/// transaction-safe condition variable.
#[derive(Debug)]
pub struct ThresholdEvent {
    counter: TmCounter,
    condvar: TmCondVar,
}

impl ThresholdEvent {
    /// Allocates the event's counter in `system`'s heap with value `init`.
    pub fn new(system: &Arc<TmSystem>, init: u64) -> Self {
        ThresholdEvent {
            counter: TmCounter::new(system, init),
            condvar: TmCondVar::new(),
        }
    }

    /// Transactionally adds `n` to the counter and notifies `TMCondVar`
    /// waiters.  (Deschedule-based waiters are woken by the runtime's
    /// post-commit `wakeWaiters` pass; no extra work is needed here, which is
    /// precisely the paper's point.)
    pub fn add(&self, tx: &mut dyn Tx, n: u64) -> TxResult<u64> {
        let v = self.counter.add(tx, n)?;
        self.condvar.broadcast_from(tx);
        Ok(v)
    }

    /// Transactionally reads the counter.
    pub fn value(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.counter.get(tx)
    }

    /// Non-transactional read (setup/verification only).
    pub fn value_direct(&self, system: &TmSystem) -> u64 {
        self.counter.load_direct(system)
    }

    /// Non-transactional reset (between frames/iterations, while no worker
    /// is running).
    pub fn reset_direct(&self, system: &TmSystem, value: u64) {
        self.counter.store_direct(system, value);
    }

    /// Blocks the calling thread until the counter reaches `threshold`,
    /// using `mechanism` to wait.  Returns the observed counter value.
    ///
    /// # Panics
    ///
    /// Panics for [`Mechanism::Pthreads`]; the lock-based kernels use
    /// [`LockEvent`] instead.
    pub fn wait_at_least(
        &self,
        rt: &AnyRuntime,
        thread: &Arc<ThreadCtx>,
        mechanism: Mechanism,
        threshold: u64,
    ) -> u64 {
        match mechanism {
            Mechanism::Pthreads => panic!("Pthreads kernels use LockEvent, not ThresholdEvent"),
            Mechanism::TmCondVar => loop {
                let done = rt.atomically(thread, |tx| {
                    let v = self.counter.get(tx)?;
                    if v >= threshold {
                        return Ok(Some(v));
                    }
                    // Commits the transaction, sleeps, and reopens; the
                    // re-check happens in the next loop iteration because the
                    // reopened transaction may observe a stale wakeup.
                    self.condvar.wait(tx)?;
                    let v = self.counter.get(tx)?;
                    Ok(if v >= threshold { Some(v) } else { None })
                });
                if let Some(v) = done {
                    return v;
                }
            },
            _ => rt.atomically(thread, |tx| {
                self.counter.wait_for_at_least(mechanism, tx, threshold)
            }),
        }
    }
}

/// Lock-based threshold event for the `Pthreads` baseline: a mutex-protected
/// counter plus a condition variable.
#[derive(Debug, Default)]
pub struct LockEvent {
    value: Mutex<u64>,
    cv: Condvar,
}

impl LockEvent {
    /// Creates an event with value `init`.
    pub fn new(init: u64) -> Self {
        LockEvent {
            value: Mutex::new(init),
            cv: Condvar::new(),
        }
    }

    /// Adds `n` and wakes all waiters.
    pub fn add(&self, n: u64) -> u64 {
        let mut guard = self.value.lock().expect("event mutex poisoned");
        *guard += n;
        let v = *guard;
        drop(guard);
        self.cv.notify_all();
        v
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        *self.value.lock().expect("event mutex poisoned")
    }

    /// Resets the counter (between frames, while no worker is running).
    pub fn reset(&self, value: u64) {
        *self.value.lock().expect("event mutex poisoned") = value;
    }

    /// Blocks until the counter reaches `threshold` and returns the observed
    /// value.
    pub fn wait_at_least(&self, threshold: u64) -> u64 {
        let mut guard = self.value.lock().expect("event mutex poisoned");
        while *guard < threshold {
            guard = self.cv.wait(guard).expect("event mutex poisoned");
        }
        *guard
    }
}

/// Splits `total` work items into `parts` contiguous chunks whose sizes
/// differ by at most one (used to divide frames/tiles/points among threads).
pub fn split_evenly(total: u64, parts: usize) -> Vec<(u64, u64)> {
    assert!(parts > 0);
    let parts64 = parts as u64;
    let base = total / parts64;
    let extra = total % parts64;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts64 {
        let len = base + u64::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Divides `threads` among `stages` pipeline stages, guaranteeing each stage
/// at least one thread (extra threads go to the earliest stages, which in the
/// real applications are the heaviest).
pub fn split_stage_threads(threads: usize, stages: usize) -> Vec<usize> {
    assert!(stages > 0);
    let mut per = vec![1usize; stages];
    let mut remaining = threads.saturating_sub(stages);
    let mut i = 0;
    while remaining > 0 {
        per[i % stages] += 1;
        remaining -= 1;
        i += 1;
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeKind;
    use tm_core::TmConfig;

    #[test]
    fn compute_is_deterministic_and_depends_on_inputs() {
        assert_eq!(compute(100, 7), compute(100, 7));
        assert_ne!(compute(100, 7), compute(100, 8));
        assert_ne!(compute(100, 7), compute(101, 7));
        // Zero units still returns a seed-derived value.
        assert_eq!(compute(0, 3), compute(0, 3));
    }

    #[test]
    fn fold_is_commutative() {
        let items = [3u64, 99, 12345, u64::MAX - 5];
        let forward = items.iter().fold(0u64, |acc, &i| fold(acc, i));
        let backward = items.iter().rev().fold(0u64, |acc, &i| fold(acc, i));
        assert_eq!(forward, backward);
    }

    #[test]
    fn split_evenly_covers_range_without_overlap() {
        for (total, parts) in [(10u64, 3usize), (8, 8), (7, 2), (0, 4), (100, 7)] {
            let ranges = split_evenly(total, parts);
            assert_eq!(ranges.len(), parts);
            let mut expected_start = 0;
            let mut sum = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, expected_start);
                assert!(e >= s);
                sum += e - s;
                expected_start = e;
            }
            assert_eq!(sum, total);
            let max = ranges.iter().map(|(s, e)| e - s).max().unwrap();
            let min = ranges.iter().map(|(s, e)| e - s).min().unwrap();
            assert!(max - min <= 1, "chunks must differ by at most one");
        }
    }

    #[test]
    fn split_stage_threads_gives_every_stage_a_thread() {
        assert_eq!(split_stage_threads(1, 3), vec![1, 1, 1]);
        assert_eq!(split_stage_threads(3, 3), vec![1, 1, 1]);
        assert_eq!(split_stage_threads(8, 3), vec![3, 3, 2]);
        assert_eq!(split_stage_threads(5, 2), vec![3, 2]);
        assert_eq!(split_stage_threads(8, 1), vec![8]);
    }

    #[test]
    fn lock_event_add_and_wait() {
        let ev = Arc::new(LockEvent::new(0));
        let ev2 = Arc::clone(&ev);
        let waiter = std::thread::spawn(move || ev2.wait_at_least(3));
        for _ in 0..3 {
            ev.add(1);
        }
        assert!(waiter.join().unwrap() >= 3);
        assert_eq!(ev.value(), 3);
        ev.reset(0);
        assert_eq!(ev.value(), 0);
    }

    #[test]
    fn threshold_event_waits_under_retry_and_waitpred() {
        for mech in [Mechanism::Retry, Mechanism::WaitPred, Mechanism::Await] {
            let rt = RuntimeKind::EagerStm.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let ev = Arc::new(ThresholdEvent::new(&system, 0));

            let rt2 = rt.clone();
            let system2 = Arc::clone(&system);
            let ev2 = Arc::clone(&ev);
            let waiter = std::thread::spawn(move || {
                let th = system2.register_thread();
                ev2.wait_at_least(&rt2, &th, mech, 2)
            });

            let th = system.register_thread();
            rt.atomically(&th, |tx| ev.add(tx, 1).map(|_| ()));
            rt.atomically(&th, |tx| ev.add(tx, 1).map(|_| ()));
            assert!(waiter.join().unwrap() >= 2, "{mech}");
            assert_eq!(ev.value_direct(&system), 2);
        }
    }

    #[test]
    fn threshold_event_waits_under_tmcondvar() {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let ev = Arc::new(ThresholdEvent::new(&system, 0));

        let rt2 = rt.clone();
        let system2 = Arc::clone(&system);
        let ev2 = Arc::clone(&ev);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            ev2.wait_at_least(&rt2, &th, Mechanism::TmCondVar, 1)
        });

        std::thread::sleep(std::time::Duration::from_millis(10));
        let th = system.register_thread();
        rt.atomically(&th, |tx| ev.add(tx, 1).map(|_| ()));
        assert!(waiter.join().unwrap() >= 1);
    }

    #[test]
    fn threshold_event_returns_immediately_when_already_met() {
        let rt = RuntimeKind::LazyStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let ev = ThresholdEvent::new(&system, 5);
        let th = system.register_thread();
        assert_eq!(ev.wait_at_least(&rt, &th, Mechanism::Retry, 3), 5);
        assert_eq!(ev.wait_at_least(&rt, &th, Mechanism::TmCondVar, 5), 5);
    }

    #[test]
    #[should_panic(expected = "LockEvent")]
    fn threshold_event_rejects_pthreads() {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let ev = ThresholdEvent::new(&system, 0);
        let th = system.register_thread();
        let _ = ev.wait_at_least(&rt, &th, Mechanism::Pthreads, 1);
    }
}
