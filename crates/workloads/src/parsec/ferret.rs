//! `ferret` kernel: content-based similarity search as a bounded pipeline.
//!
//! The real application is a four-stage pipeline (segmentation, feature
//! extraction, indexing, ranking) whose stages hand work to each other
//! through bounded queues; Table 2.1 counts **2** condition-synchronization
//! points (queue-not-empty and queue-not-full).  The kernel keeps that
//! structure: a driver thread feeds items into an input queue, a first bank
//! of workers transforms them into a middle queue, and a second bank of
//! workers finishes them and folds the result into a shared checksum.
//!
//! Per-item work is [`super::common::compute`], standing in for image segmentation
//! and feature extraction.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{PthreadBuffer, TmBoundedBuffer};

use super::common::{compute, fold, split_stage_threads};
use super::{KernelParams, KernelResult, ParsecApp};

/// Sentinel enqueued to tell a worker to shut down.
const POISON: u64 = u64::MAX;

/// Capacity of the inter-stage queues (the real application uses small
/// per-stage queues, which is what makes the sync points hot).
const QUEUE_CAP: usize = 16;

/// Base number of query items at [`super::Scale::Test`].
const BASE_ITEMS: u64 = 48;

/// Compute units per item in the first worker stage.
const SEGMENT_UNITS: u64 = 60;

/// Compute units per item in the second worker stage.
const RANK_UNITS: u64 = 40;

fn items(params: &KernelParams) -> u64 {
    BASE_ITEMS * params.scale.items_factor()
}

fn work(params: &KernelParams, base: u64) -> u64 {
    base * params.scale.work_factor()
}

/// Reference checksum: what the pipeline must produce regardless of
/// mechanism, runtime or thread count.
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let mut sum = 0u64;
    for i in 0..items(params) {
        let a = compute(work(params, SEGMENT_UNITS), i + 1);
        let b = compute(work(params, RANK_UNITS), a);
        sum = fold(sum, b);
    }
    sum
}

/// Runs the ferret kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Ferret,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n = items(params);
    let seg_units = work(params, SEGMENT_UNITS);
    let rank_units = work(params, RANK_UNITS);

    let in_q = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let mid_q = TmBoundedBuffer::new(&system, QUEUE_CAP);

    let stage_threads = split_stage_threads(params.threads, 2);
    let (seg_workers, rank_workers) = (stage_threads[0], stage_threads[1]);

    let checksum = Arc::new(AtomicU64::new(0));
    let seg_done = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Driver: feeds items then one poison per segmentation worker.
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let in_q = Arc::clone(&in_q);
            scope.spawn(move || {
                let th = system.register_thread();
                for i in 0..n {
                    rt.atomically(&th, |tx| in_q.produce(mechanism, tx, i + 1));
                }
                for _ in 0..seg_workers {
                    rt.atomically(&th, |tx| in_q.produce(mechanism, tx, POISON));
                }
            });
        }

        // Stage 1: segmentation + feature extraction.
        for _ in 0..seg_workers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let in_q = Arc::clone(&in_q);
            let mid_q = Arc::clone(&mid_q);
            let seg_done = Arc::clone(&seg_done);
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let item = rt.atomically(&th, |tx| in_q.consume(mechanism, tx));
                    if item == POISON {
                        break;
                    }
                    let feature = compute(seg_units, item);
                    rt.atomically(&th, |tx| mid_q.produce(mechanism, tx, feature));
                }
                // The last segmentation worker to exit poisons stage 2.
                if seg_done.fetch_add(1, Ordering::AcqRel) + 1 == seg_workers {
                    for _ in 0..rank_workers {
                        rt.atomically(&th, |tx| mid_q.produce(mechanism, tx, POISON));
                    }
                }
            });
        }

        // Stage 2: indexing + ranking.
        for _ in 0..rank_workers {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let mid_q = Arc::clone(&mid_q);
            let checksum = Arc::clone(&checksum);
            scope.spawn(move || {
                let th = system.register_thread();
                let mut local = 0u64;
                loop {
                    let feature = rt.atomically(&th, |tx| mid_q.consume(mechanism, tx));
                    if feature == POISON {
                        break;
                    }
                    local = fold(local, compute(rank_units, feature));
                }
                checksum.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    (checksum.load(Ordering::Relaxed), n, system.stats())
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n = items(params);
    let seg_units = work(params, SEGMENT_UNITS);
    let rank_units = work(params, RANK_UNITS);

    let in_q = Arc::new(PthreadBuffer::new(QUEUE_CAP));
    let mid_q = Arc::new(PthreadBuffer::new(QUEUE_CAP));

    let stage_threads = split_stage_threads(params.threads, 2);
    let (seg_workers, rank_workers) = (stage_threads[0], stage_threads[1]);

    let checksum = Arc::new(AtomicU64::new(0));
    let seg_done = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        {
            let in_q = Arc::clone(&in_q);
            scope.spawn(move || {
                for i in 0..n {
                    in_q.produce(i + 1);
                }
                for _ in 0..seg_workers {
                    in_q.produce(POISON);
                }
            });
        }
        for _ in 0..seg_workers {
            let in_q = Arc::clone(&in_q);
            let mid_q = Arc::clone(&mid_q);
            let seg_done = Arc::clone(&seg_done);
            scope.spawn(move || {
                loop {
                    let item = in_q.consume();
                    if item == POISON {
                        break;
                    }
                    mid_q.produce(compute(seg_units, item));
                }
                if seg_done.fetch_add(1, Ordering::AcqRel) + 1 == seg_workers {
                    for _ in 0..rank_workers {
                        mid_q.produce(POISON);
                    }
                }
            });
        }
        for _ in 0..rank_workers {
            let mid_q = Arc::clone(&mid_q);
            let checksum = Arc::clone(&checksum);
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    let feature = mid_q.consume();
                    if feature == POISON {
                        break;
                    }
                    local = fold(local, compute(rank_units, feature));
                }
                checksum.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    (
        checksum.load(Ordering::Relaxed),
        n,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.checksum, expected_checksum(&p));
        assert_eq!(r.work_items, items(&p));
    }

    #[test]
    fn retry_on_each_runtime_matches_reference() {
        for kind in RuntimeKind::ALL {
            let p = params(3, Mechanism::Retry, kind);
            let r = run(&p);
            assert_eq!(r.checksum, expected_checksum(&p), "{kind}");
            assert!(r.stats.sw_commits + r.stats.hw_commits > 0, "{kind}");
        }
    }

    #[test]
    fn all_mechanisms_agree_on_eager_stm() {
        let reference = expected_checksum(&params(2, Mechanism::Retry, RuntimeKind::EagerStm));
        for mech in Mechanism::ALL {
            let p = params(2, mech, RuntimeKind::EagerStm);
            let r = run(&p);
            assert_eq!(r.checksum, reference, "{mech}");
        }
    }

    #[test]
    fn single_thread_still_completes() {
        let p = params(1, Mechanism::Await, RuntimeKind::EagerStm);
        let r = run(&p);
        assert_eq!(r.checksum, expected_checksum(&p));
    }
}
