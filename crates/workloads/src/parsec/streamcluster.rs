//! `streamcluster` kernel: barrier-heavy clustering rounds with a shared
//! reduction.
//!
//! The real application clusters a stream of points; every round the worker
//! threads evaluate the cost of opening a new cluster centre over their
//! partition of points, the partial costs are reduced into a global value,
//! and a coordinator decides whether to accept the centre before the next
//! round starts.  PARSEC's implementation is famously barrier-heavy; Table
//! 2.1 counts **5** condition-synchronization points.
//!
//! The kernel runs `ROUNDS` rounds.  Each round: every thread computes the
//! partial cost of its point range ([`compute`]) and transactionally adds it
//! to a shared cost accumulator; all threads meet at a barrier; the
//! coordinator (thread 0) folds the round's cost into the checksum and
//! resets the accumulator; a second barrier releases the next round.

use std::sync::Arc;
use std::time::Instant;

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::{TmBarrier, TmCounter};

use super::common::{compute, fold, split_evenly, LockEvent};
use super::{KernelParams, KernelResult, ParsecApp};

const BASE_ROUNDS: u64 = 6;
const POINTS: u64 = 80;
const POINT_UNITS: u64 = 18;
/// Partial costs are truncated to 32 bits before the reduction.
const COST_MASK: u64 = 0xFFFF_FFFF;

fn rounds(params: &KernelParams) -> u64 {
    BASE_ROUNDS * params.scale.items_factor()
}

fn work(params: &KernelParams) -> u64 {
    POINT_UNITS * params.scale.work_factor()
}

/// The partial cost a thread contributes for its point range in `round`.
fn partial_cost(units: u64, round: u64, range: (u64, u64)) -> u64 {
    let mut local = 0u64;
    for point in range.0..range.1 {
        local = fold(local, compute(units, point + 13 + round * 31));
    }
    local & COST_MASK
}

/// Reference checksum (depends on thread count via the partitioning, not on
/// the mechanism or runtime).
pub fn expected_checksum(params: &KernelParams) -> u64 {
    let units = work(params);
    let ranges = split_evenly(POINTS, params.threads);
    let mut sum = 0u64;
    for round in 0..rounds(params) {
        let mut cost = 0u64;
        for &range in &ranges {
            cost += partial_cost(units, round, range);
        }
        // The coordinator "opens" the centre when the cost clears a
        // deterministic threshold; both branches feed the checksum.
        sum = fold(
            sum,
            if cost & 1 == 0 {
                cost
            } else {
                cost.rotate_left(7)
            },
        );
    }
    sum
}

/// Runs the streamcluster kernel with `params`.
pub fn run(params: &KernelParams) -> KernelResult {
    assert!(params.is_valid(), "invalid mechanism/runtime combination");
    let start = Instant::now();
    let (checksum, work_items, stats) = if params.mechanism == Mechanism::Pthreads {
        run_locks(params)
    } else {
        run_tm(params)
    };
    KernelResult {
        app: ParsecApp::Streamcluster,
        params: *params,
        elapsed: start.elapsed(),
        work_items,
        checksum,
        stats,
    }
}

fn decide(cost: u64) -> u64 {
    if cost & 1 == 0 {
        cost
    } else {
        cost.rotate_left(7)
    }
}

fn run_tm(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let rt = params.runtime.over(tm_core::TmSystem::new(
        TmConfig::default()
            .with_mem_plane_env()
            .with_heap_words(1 << 14),
    ));
    let system = Arc::clone(rt.system());
    let mechanism = params.mechanism;
    let n_rounds = rounds(params);
    let units = work(params);
    let ranges = split_evenly(POINTS, params.threads);

    let barrier = Arc::new(TmBarrier::new(&system, params.threads as u64));
    let cost = Arc::new(TmCounter::new(&system, 0));

    let checksum = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (tid, &range) in ranges.iter().enumerate() {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let barrier = Arc::clone(&barrier);
            let cost = Arc::clone(&cost);
            handles.push(scope.spawn(move || {
                let th = system.register_thread();
                let mut sum = 0u64;
                for round in 0..n_rounds {
                    let partial = partial_cost(units, round, range);
                    rt.atomically(&th, |tx| cost.add(tx, partial).map(|_| ()));
                    // Reduction barrier: every partial cost is in.
                    barrier.wait(&rt, &th, mechanism);
                    if tid == 0 {
                        // Coordinator phase: only thread 0 touches the
                        // accumulator between the two barriers.
                        let total = cost.load_direct(&system);
                        cost.store_direct(&system, 0);
                        sum = fold(sum, decide(total));
                    }
                    // Release barrier: the next round may start.
                    barrier.wait(&rt, &th, mechanism);
                }
                sum
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .fold(0u64, fold)
    });

    (checksum, n_rounds * POINTS, system.stats())
}

fn run_locks(params: &KernelParams) -> (u64, u64, tm_core::StatsSnapshot) {
    let n_rounds = rounds(params);
    let units = work(params);
    let ranges = split_evenly(POINTS, params.threads);

    let barrier = Arc::new(std::sync::Barrier::new(params.threads));
    let cost = Arc::new(LockEvent::new(0));

    let checksum = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (tid, &range) in ranges.iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            let cost = Arc::clone(&cost);
            handles.push(scope.spawn(move || {
                let mut sum = 0u64;
                for round in 0..n_rounds {
                    cost.add(partial_cost(units, round, range));
                    barrier.wait();
                    if tid == 0 {
                        let total = cost.value();
                        cost.reset(0);
                        sum = fold(sum, decide(total));
                    }
                    barrier.wait();
                }
                sum
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .fold(0u64, fold)
    });

    (
        checksum,
        n_rounds * POINTS,
        tm_core::StatsSnapshot::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec::Scale;
    use crate::runtime::RuntimeKind;

    fn params(threads: usize, mechanism: Mechanism, runtime: RuntimeKind) -> KernelParams {
        KernelParams::new(threads, mechanism, runtime, Scale::Test)
    }

    #[test]
    fn pthreads_matches_reference_checksum() {
        let p = params(4, Mechanism::Pthreads, RuntimeKind::EagerStm);
        assert_eq!(run(&p).checksum, expected_checksum(&p));
    }

    #[test]
    fn retry_matches_reference_on_each_runtime() {
        for kind in RuntimeKind::ALL {
            let p = params(2, Mechanism::Retry, kind);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{kind}");
        }
    }

    #[test]
    fn deschedule_mechanisms_agree_at_four_threads() {
        for mech in [Mechanism::Await, Mechanism::WaitPred, Mechanism::TmCondVar] {
            let p = params(4, mech, RuntimeKind::EagerStm);
            assert_eq!(run(&p).checksum, expected_checksum(&p), "{mech}");
        }
    }

    #[test]
    fn coordinator_decision_is_deterministic() {
        assert_eq!(decide(4), 4);
        assert_eq!(decide(5), 5u64.rotate_left(7));
        let p1 = params(3, Mechanism::Retry, RuntimeKind::EagerStm);
        let p2 = params(3, Mechanism::Restart, RuntimeKind::LazyStm);
        assert_eq!(run(&p1).checksum, run(&p2).checksum);
    }
}
