//! Workload drivers for the paper's evaluation (§2.4).
//!
//! Two workload families are provided, mirroring the two halves of the
//! evaluation:
//!
//! * [`pc`] — the bounded-buffer producer/consumer micro-benchmark of
//!   §2.4.1, parameterized by producer count, consumer count and buffer
//!   size (Figures 2.3–2.5).
//! * [`parsec`] — synthetic kernels reproducing the condition-
//!   synchronization structure of the eight PARSEC applications of §2.4.2
//!   (Figures 2.6–2.8), plus [`loc`], the Table 2.1 lines-of-code
//!   accounting.
//!
//! Beyond the paper, [`timeout`] exercises the timed-wait extension
//! (`consume_timeout` over a stalling pipeline; lossy consumers that give
//! up after repeated deadline misses), and [`kv_store`] is the
//! server-shaped session-store scenario: Zipf-skewed get/put/delete/scan
//! traffic ([`zipf`]) over the transactional KV plane with bounded-mailbox
//! flow control and per-operation-class tail latency.
//!
//! Both families run every combination of the seven mechanisms
//! ([`condsync::Mechanism`]) and the three runtime configurations
//! ([`RuntimeKind`]); results are collected into the serializable records of
//! [`report`], which the `tm-bench` figure binaries render as the same rows
//! and series the paper plots.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod kv_store;
pub mod loc;
pub mod parsec;
pub mod pc;
pub mod report;
pub mod runtime;
pub mod timeout;
pub mod zipf;

pub use loc::{measured_table, paper_table, LocRow};

/// The `TM_STRESS_ITERS` soak multiplier, shared by the seeded race suites:
/// the scheduled CI `stress` job sets it to 10 so interleaving-sensitive
/// tests run at 10× their PR-gate iteration counts.  Unset, unparsable or
/// zero values all mean 1× (the normal gate).
pub fn stress_iters() -> u64 {
    std::env::var("TM_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}
pub use kv_store::{run_kv_store_scenario, KvParams, KvResult};
pub use parsec::{KernelParams, KernelResult, ParsecApp, Scale};
pub use pc::{run_pc, run_pc_configured, run_pc_trials, PcParams, PcResult};
pub use report::{DataPoint, Panel, Report, Series};
pub use runtime::{AnyRuntime, RuntimeKind};
pub use timeout::{run_timeout_scenario, TimeoutParams, TimeoutResult};
pub use zipf::ZipfGen;
