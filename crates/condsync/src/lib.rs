//! Condition synchronization for transactional memory.
//!
//! This crate implements the paper's contribution: the **Deschedule**
//! abstract mechanism (Algorithm 4) and, on top of it, the three linguistic
//! constructs the paper proposes or adapts:
//!
//! * [`retry`] — Haskell-style `Retry` (Algorithm 5): sleep until some
//!   location read by the failed attempt changes value.
//! * [`await_addrs`] — Atomos-style `Await` (Algorithm 6): sleep until one of
//!   an explicit list of addresses changes value.
//! * [`wait_pred`] — `WaitPred` (Algorithm 7): sleep until a user-supplied
//!   predicate over shared state becomes true.
//!
//! Each construct also has a deadline-bounded variant — [`retry_for`],
//! [`await_for`], [`wait_pred_for`] — and waits can be ended out-of-band
//! with [`cancel`]; the re-executed transaction observes how its wait ended
//! through [`wake_reason`] / [`timed_out`] / [`was_cancelled`] (see the
//! [`timed`] module for the protocol).
//!
//! plus the baselines the evaluation compares against:
//!
//! * [`restart`] — abort and immediately re-execute (no sleeping),
//! * [`orig`] — the original lock-metadata-based `Retry` (Algorithm 1),
//! * [`condvar::TmCondVar`] — transaction-safe condition variables, which
//!   commit the in-flight transaction at the wait point (breaking atomicity).
//!
//! All of the paper's mechanisms are expressed as a rollback followed by
//! [`deschedule::deschedule`]; committed writers call
//! [`deschedule::wake_waiters_matching`], which evaluates each *relevant*
//! sleeper's wait condition as an ordinary read-only transaction over shared
//! memory.  Relevance comes from the sharded waiter registry
//! (`tm_core::waitlist`): waiters are indexed by the ownership-record
//! stripes their conditions cover, and a committing writer scans only the
//! shards covering the stripes it wrote.  Correctness never *requires* the
//! write set — [`deschedule::wake_waiters`] is the scan-everything variant
//! any committer may use — which is what keeps the design compatible with
//! (simulated) hardware TM, whose serial fallback reports no write set at
//! all.
//!
//! How each [`tm_core::WaitSpec`] variant maps onto registry shards:
//!
//! | `WaitSpec` variant | materialised condition | registry shard(s) |
//! |---|---|---|
//! | `ReadSetValues` (`Retry`) | value log `(addr, val)` pairs | shard of every logged address's stripe |
//! | `Addrs` (`Await`) | captured `(addr, val)` pairs | shard of every awaited address's stripe |
//! | `Pred` (`WaitPred`) | predicate + marshalled args | the *unindexed* shard (no addresses to index; scanned by every writer) |
//! | `OrigReadLocks` (`Retry-Orig`) | — | not in this registry at all: it uses the separate [`OrigRegistry`] keyed by read-lock indices |
//!
//! Both functions are invoked exclusively by the unified driver loop in
//! `tm_core::driver` (where their implementation lives — the dependency
//! points from this crate to `tm-core`); this crate contributes the
//! user-facing constructs, the `Retry-Orig` and `TMCondVar` baselines, and
//! the [`Mechanism`] enumeration the evaluation sweeps over.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod condvar;
pub mod deschedule;
pub mod mechanism;
pub mod orig;
pub mod timed;

pub use condvar::{TmCondVar, WATCHDOG_INTERVAL};
pub use deschedule::{
    deschedule, deschedule_until, wake_waiters, wake_waiters_matching, DescheduleOutcome,
    WakeReason,
};
pub use mechanism::{await_addrs, await_one, restart, retry, retry_orig, wait_pred, Mechanism};
pub use orig::{sleep_until_intersection, OrigRegistry, OrigWaiter};
pub use timed::{
    await_for, await_one_for, cancel, cancel_thread, clear_wake_reason, retry_for, timed_out,
    wait_interrupted, wait_pred_for, wake_reason, was_cancelled,
};
