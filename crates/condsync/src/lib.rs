//! Condition synchronization for transactional memory.
//!
//! This crate implements the paper's contribution: the **Deschedule**
//! abstract mechanism (Algorithm 4) and, on top of it, the three linguistic
//! constructs the paper proposes or adapts:
//!
//! * [`retry`] — Haskell-style `Retry` (Algorithm 5): sleep until some
//!   location read by the failed attempt changes value.
//! * [`await_addrs`] — Atomos-style `Await` (Algorithm 6): sleep until one of
//!   an explicit list of addresses changes value.
//! * [`wait_pred`] — `WaitPred` (Algorithm 7): sleep until a user-supplied
//!   predicate over shared state becomes true.
//!
//! plus the baselines the evaluation compares against:
//!
//! * [`restart`] — abort and immediately re-execute (no sleeping),
//! * [`orig`] — the original lock-metadata-based `Retry` (Algorithm 1),
//! * [`condvar::TmCondVar`] — transaction-safe condition variables, which
//!   commit the in-flight transaction at the wait point (breaking atomicity).
//!
//! All of the paper's mechanisms are expressed as a rollback followed by
//! [`deschedule::deschedule`]; committed writers call
//! [`deschedule::wake_waiters`], which evaluates each sleeper's wait
//! condition as an ordinary read-only transaction over shared memory.  No
//! access to the writer's write set is required, which is what makes the
//! design compatible with (simulated) hardware TM.
//!
//! Both functions are invoked exclusively by the unified driver loop in
//! `tm_core::driver` (where their implementation lives — the dependency
//! points from this crate to `tm-core`); this crate contributes the
//! user-facing constructs, the `Retry-Orig` and `TMCondVar` baselines, and
//! the [`Mechanism`] enumeration the evaluation sweeps over.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod condvar;
pub mod deschedule;
pub mod mechanism;
pub mod orig;

pub use condvar::TmCondVar;
pub use deschedule::{deschedule, wake_waiters, DescheduleOutcome};
pub use mechanism::{await_addrs, await_one, restart, retry, retry_orig, wait_pred, Mechanism};
pub use orig::{sleep_until_intersection, OrigRegistry, OrigWaiter};
