//! The original Retry mechanism (Algorithm 1), kept as the `Retry-Orig`
//! baseline.
//!
//! In the original design the waiter publishes the *lock metadata* (ownership
//! records) covering its read set, atomically with validating that those
//! reads are still consistent.  Every committing writer must then intersect
//! the set of locks it acquired with each waiter's read-lock set and wake the
//! waiter on a non-empty intersection.  This couples the mechanism to the
//! STM's metadata — which is exactly what makes it incompatible with hardware
//! TM, and what the paper's value-based Deschedule avoids.
//!
//! As in Algorithm 1, a single lock protects the waiting list; the "atomically
//! add calling transaction to waiting if still valid" step is expressed as
//! [`OrigRegistry::register_if`], which runs a runtime-supplied validation
//! closure while holding that lock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tm_core::lock::Mutex;

use tm_core::stats::TxStats;
use tm_core::{Semaphore, ThreadCtx, ThreadId};

/// A published record of a transaction sleeping under the original Retry.
#[derive(Debug)]
pub struct OrigWaiter {
    /// The descheduled thread.
    pub thread: ThreadId,
    /// Ownership-record indices covering the waiter's read set.
    pub read_orecs: Vec<usize>,
    /// Semaphore the waiter blocks on.
    pub sem: Arc<Semaphore>,
}

impl OrigWaiter {
    /// Creates a waiter record.
    pub fn new(thread: ThreadId, read_orecs: Vec<usize>, sem: Arc<Semaphore>) -> Arc<Self> {
        Arc::new(OrigWaiter {
            thread,
            read_orecs,
            sem,
        })
    }
}

/// The `waiting` list of Algorithm 1: lock-protected, scanned by every
/// committing writer.
#[derive(Debug, Default)]
pub struct OrigRegistry {
    list: Mutex<Vec<Arc<OrigWaiter>>>,
    count: AtomicUsize,
}

impl OrigRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        OrigRegistry::default()
    }

    /// Fast emptiness check for committing writers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    /// Number of registered waiters.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Atomically (with respect to waking writers) validates and registers a
    /// waiter: `validate` runs while the list lock is held, and the waiter is
    /// only inserted if it returns true (Algorithm 1, `Retry` lines 3–8).
    ///
    /// Returns whether the waiter was inserted; if not, the caller must
    /// restart its transaction instead of sleeping.
    pub fn register_if<F: FnOnce() -> bool>(&self, waiter: Arc<OrigWaiter>, validate: F) -> bool {
        let mut list = self.list.lock();
        if !validate() {
            return false;
        }
        list.push(waiter);
        self.count.store(list.len(), Ordering::Release);
        true
    }

    /// Removes a waiter (after it has been woken, or if it gave up).
    pub fn deregister(&self, waiter: &Arc<OrigWaiter>) {
        let mut list = self.list.lock();
        list.retain(|w| !Arc::ptr_eq(w, waiter));
        self.count.store(list.len(), Ordering::Release);
    }

    /// Wakes every registered waiter unconditionally.  Serial commits carry
    /// no lock set to intersect, so a serial writer must assume any waiter's
    /// reads may have changed (the waiter revalidates on wake-up, exactly as
    /// after an intersection hit).
    ///
    /// Returns the number of threads woken.
    pub fn wake_all(&self, thread: &Arc<ThreadCtx>) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut woken = 0;
        let mut list = self.list.lock();
        for w in list.drain(..) {
            TxStats::bump(&thread.stats.wake_checks);
            w.sem.post();
            woken += 1;
            TxStats::bump(&thread.stats.wakeups);
        }
        self.count.store(0, Ordering::Release);
        woken
    }

    /// Wakes every waiter whose read-lock set intersects `written_orecs`
    /// (Algorithm 1, `TxCommit` lines 10–15).  Called by a writer after it
    /// has committed and released its locks.
    ///
    /// Returns the number of threads woken.
    pub fn wake_matching(&self, thread: &Arc<ThreadCtx>, written_orecs: &[usize]) -> usize {
        if self.is_empty() || written_orecs.is_empty() {
            return 0;
        }
        let mut woken = 0;
        let mut list = self.list.lock();
        list.retain(|w| {
            TxStats::bump(&thread.stats.wake_checks);
            let hit = w.read_orecs.iter().any(|r| written_orecs.contains(r));
            if hit {
                w.sem.post();
                woken += 1;
                TxStats::bump(&thread.stats.wakeups);
                false
            } else {
                true
            }
        });
        self.count.store(list.len(), Ordering::Release);
        woken
    }
}

/// The full `Retry-Orig` deschedule path (Algorithm 1), shared by the
/// software runtimes' engine hooks: publish-if-valid, sleep, deregister.
///
/// The caller must have rolled its transaction back already;
/// `reads_still_valid` runs under the registry lock and decides whether the
/// read set is still consistent (if not, the thread re-executes immediately
/// instead of sleeping).
pub fn sleep_until_intersection<F: FnOnce() -> bool>(
    registry: &OrigRegistry,
    thread: &Arc<ThreadCtx>,
    read_orecs: Vec<usize>,
    reads_still_valid: F,
) {
    TxStats::bump(&thread.stats.descheds);
    let sem = Arc::new(Semaphore::new());
    let waiter = OrigWaiter::new(thread.id, read_orecs, Arc::clone(&sem));
    if registry.register_if(Arc::clone(&waiter), reads_still_valid) {
        TxStats::bump(&thread.stats.sleeps);
        sem.wait();
        registry.deregister(&waiter);
    } else {
        // Some location the waiter read already changed: re-execute now.
        TxStats::bump(&thread.stats.desched_skips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{TmConfig, TmSystem};

    fn thread_ctx() -> Arc<ThreadCtx> {
        TmSystem::new(TmConfig::small()).register_thread()
    }

    #[test]
    fn register_if_respects_validation() {
        let reg = OrigRegistry::new();
        let w = OrigWaiter::new(0, vec![1, 2, 3], Arc::new(Semaphore::new()));
        assert!(!reg.register_if(Arc::clone(&w), || false));
        assert!(reg.is_empty());
        assert!(reg.register_if(w, || true));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn wake_matching_requires_intersection() {
        let reg = OrigRegistry::new();
        let th = thread_ctx();
        let sem = Arc::new(Semaphore::new());
        let w = OrigWaiter::new(0, vec![10, 11], Arc::clone(&sem));
        reg.register_if(Arc::clone(&w), || true);

        assert_eq!(reg.wake_matching(&th, &[1, 2, 3]), 0);
        assert_eq!(sem.permits(), 0);
        assert_eq!(reg.len(), 1);

        assert_eq!(reg.wake_matching(&th, &[3, 11]), 1);
        assert_eq!(sem.permits(), 1);
        assert!(reg.is_empty(), "woken waiters are removed from the list");
    }

    #[test]
    fn wake_matching_skips_work_when_empty() {
        let reg = OrigRegistry::new();
        let th = thread_ctx();
        assert_eq!(reg.wake_matching(&th, &[1, 2]), 0);
        assert_eq!(th.stats.snapshot().wake_checks, 0);
    }

    #[test]
    fn multiple_waiters_woken_by_one_writer() {
        let reg = OrigRegistry::new();
        let th = thread_ctx();
        let s1 = Arc::new(Semaphore::new());
        let s2 = Arc::new(Semaphore::new());
        let s3 = Arc::new(Semaphore::new());
        reg.register_if(OrigWaiter::new(1, vec![5], Arc::clone(&s1)), || true);
        reg.register_if(OrigWaiter::new(2, vec![5, 6], Arc::clone(&s2)), || true);
        reg.register_if(OrigWaiter::new(3, vec![7], Arc::clone(&s3)), || true);
        assert_eq!(reg.wake_matching(&th, &[5]), 2);
        assert_eq!(s1.permits(), 1);
        assert_eq!(s2.permits(), 1);
        assert_eq!(s3.permits(), 0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn deregister_removes_specific_waiter() {
        let reg = OrigRegistry::new();
        let w1 = OrigWaiter::new(1, vec![1], Arc::new(Semaphore::new()));
        let w2 = OrigWaiter::new(2, vec![2], Arc::new(Semaphore::new()));
        reg.register_if(Arc::clone(&w1), || true);
        reg.register_if(Arc::clone(&w2), || true);
        reg.deregister(&w1);
        assert_eq!(reg.len(), 1);
        reg.deregister(&w1);
        assert_eq!(reg.len(), 1);
    }
}
