//! Transaction-safe condition variables (the `TMCondVar` baseline).
//!
//! This is a transliteration of lock-based condition-variable code into
//! transactions, in the style of Wang et al. (SPAA 2014): a `wait` commits
//! the in-flight transaction at the wait point, blocks, and then starts a new
//! transaction for the remainder of the critical section.  **It breaks the
//! atomicity of the enclosing transaction** — the partial updates made before
//! the wait become visible while the thread sleeps (this is exactly the
//! hazard of Algorithm 3 that the paper's mechanisms avoid).
//!
//! Signals take effect immediately on the shared generation counter; a
//! signal with no registered sleeper is lost, as with POSIX condition
//! variables.  Waits are subject to spurious wake-ups, so callers must
//! re-check their predicate in a loop, as the paper's Algorithm 2 does.
//!
//! # The signal-before-commit hazard, and the watchdog that bounds it
//!
//! On the HTM and hybrid runtimes, a signaler's *data* commit and its
//! `signal` are separate events: the signal bumps the generation the moment
//! it is issued, while the shared-state update it announces becomes visible
//! only when the enclosing transaction later commits.  A waiter can
//! therefore check its predicate against the pre-commit state (false), and
//! sample its ticket *after* the signal already landed — so the generation
//! never moves again and, with no further signal coming, the waiter would
//! sleep forever.  (This is the Algorithm-3 atomicity break surfacing as a
//! lost wake-up; it reproduced as a rare `producer_consumer` hang.)
//!
//! The fix is a watchdog on the sleep itself: every wait uses a bounded
//! [`Condvar::wait_for`] and, when the timeout fires with the generation
//! still unmoved, returns as a *spurious wake-up* (counted in
//! `TxStats::watchdog_redeliveries`).  Callers already re-check their
//! predicate in a loop, so re-delivery is semantics-preserving — the lost
//! signal is re-derived from the now-committed state within
//! [`WATCHDOG_INTERVAL`] instead of never.

use std::time::Duration;

use tm_core::lock::{Condvar, Mutex};

use tm_core::stats::TxStats;
use tm_core::{Tx, TxResult};

/// Upper bound on how long a lost signal stays lost: a waiter whose
/// generation has not moved re-checks its predicate this often.  Large
/// enough that healthy waits (signal actually coming) practically never pay
/// the re-check; small enough that the recovery path is invisible in tests.
pub const WATCHDOG_INTERVAL: Duration = Duration::from_millis(2);

/// A condition variable usable from inside transactions.
#[derive(Debug, Default)]
pub struct TmCondVar {
    /// Generation counter: incremented by every signal/broadcast.
    gen: Mutex<u64>,
    cv: Condvar,
}

impl TmCondVar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        TmCondVar::default()
    }

    /// Waits on the condition variable from inside a transaction.
    ///
    /// Commits the caller's in-flight transaction (breaking its atomicity),
    /// blocks until a signal issued *after* this call began arrives — or
    /// until the watchdog re-delivers a possibly-lost one as a spurious
    /// wake-up (see the module docs) — then starts a fresh transaction for
    /// the rest of the body.
    pub fn wait(&self, tx: &mut dyn Tx) -> TxResult<()> {
        let thread = tx.thread();
        TxStats::bump(&thread.stats.condvar_waits);
        // Sample the generation before committing so a signal that lands
        // between our commit and our sleep is not lost.
        let ticket = *self.gen.lock();
        tx.commit_and_reopen(&mut || {
            let mut gen = self.gen.lock();
            while *gen == ticket {
                let timed_out = self.cv.wait_for(&mut gen, WATCHDOG_INTERVAL);
                if timed_out && *gen == ticket {
                    // The generation never moved: either nobody has signaled
                    // yet, or a signal raced our ticket sample before its
                    // data commit landed (the signal-before-commit window).
                    // Return as a spurious wake-up; the caller's predicate
                    // loop distinguishes the two against committed state.
                    TxStats::bump(&thread.stats.watchdog_redeliveries);
                    break;
                }
            }
        })
    }

    /// Wakes one waiter.  May be called from inside or outside a transaction;
    /// the effect is immediate.
    pub fn signal_from(&self, tx: &mut dyn Tx) {
        TxStats::bump(&tx.thread().stats.condvar_signals);
        self.signal();
    }

    /// Wakes one waiter (non-transactional callers).
    pub fn signal(&self) {
        let mut gen = self.gen.lock();
        *gen += 1;
        drop(gen);
        self.cv.notify_one();
    }

    /// Wakes all waiters.
    pub fn broadcast_from(&self, tx: &mut dyn Tx) {
        TxStats::bump(&tx.thread().stats.condvar_signals);
        self.broadcast();
    }

    /// Wakes all waiters (non-transactional callers).
    pub fn broadcast(&self) {
        let mut gen = self.gen.lock();
        *gen += 1;
        drop(gen);
        self.cv.notify_all();
    }

    /// Number of signals/broadcasts ever issued (for tests).
    pub fn generation(&self) -> u64 {
        *self.gen.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use tm_core::{Addr, TmConfig, TmSystem, TxCommon, TxCtl, TxMode};

    /// A tx whose commit_and_reopen just runs the block, for driving the
    /// condvar protocol without a full STM.
    struct PassTx {
        common: TxCommon,
        system: Arc<TmSystem>,
        reopened: usize,
    }

    impl Tx for PassTx {
        fn read(&mut self, a: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(a))
        }
        fn write(&mut self, a: Addr, v: u64) -> TxResult<()> {
            self.system.heap.store(a, v);
            Ok(())
        }
        fn alloc(&mut self, w: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(w).unwrap())
        }
        fn free(&mut self, a: Addr, w: usize) -> TxResult<()> {
            self.system.heap.dealloc(a, w);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            self.reopened += 1;
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(tm_core::AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn pass_tx(system: &Arc<TmSystem>) -> PassTx {
        PassTx {
            common: TxCommon::new(system.register_thread(), TxMode::Software, 0),
            system: Arc::clone(system),
            reopened: 0,
        }
    }

    #[test]
    fn signal_bumps_generation() {
        let cv = TmCondVar::new();
        assert_eq!(cv.generation(), 0);
        cv.signal();
        cv.broadcast();
        assert_eq!(cv.generation(), 2);
    }

    #[test]
    fn wait_blocks_until_signal() {
        let system = TmSystem::new(TmConfig::small());
        let cv = Arc::new(TmCondVar::new());
        let cv2 = Arc::clone(&cv);
        let sys2 = Arc::clone(&system);
        let h = std::thread::spawn(move || {
            let mut tx = pass_tx(&sys2);
            cv2.wait(&mut tx).unwrap();
            tx.reopened
        });
        std::thread::sleep(Duration::from_millis(20));
        cv.signal();
        assert_eq!(
            h.join().unwrap(),
            1,
            "wait must commit-and-reopen exactly once"
        );
    }

    #[test]
    fn signal_between_sample_and_sleep_is_not_lost() {
        // Directly exercises the ticket protocol: if the generation moves
        // after the ticket was sampled, the wait returns without blocking.
        let system = TmSystem::new(TmConfig::small());
        let cv = Arc::new(TmCondVar::new());
        cv.signal(); // generation = 1 before the waiter samples
        let ticket = cv.generation();
        cv.signal(); // generation = 2: the "lost" signal
        let tx = pass_tx(&system);
        // Manually emulate the wait body with the stale ticket.
        let gen = cv.gen.lock();
        assert_ne!(*gen, ticket, "waiter must observe the signal and not block");
        drop(gen);
        drop(tx);
    }

    #[test]
    fn broadcast_wakes_all_waiters() {
        let system = TmSystem::new(TmConfig::small());
        let cv = Arc::new(TmCondVar::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cv = Arc::clone(&cv);
            let sys = Arc::clone(&system);
            handles.push(std::thread::spawn(move || {
                let mut tx = pass_tx(&sys);
                cv.wait(&mut tx).unwrap();
                true
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        cv.broadcast();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    fn watchdog_redelivers_a_lost_signal() {
        // Reproduce the signal-before-commit hazard directly: the signal
        // lands *before* the waiter samples its ticket, so no further
        // generation bump will ever arrive.  The old code slept forever
        // here; the watchdog must return the wait as a spurious wake-up
        // within a bounded number of intervals.
        let system = TmSystem::new(TmConfig::small());
        let cv = TmCondVar::new();
        cv.signal(); // the "lost" signal: consumed into the ticket sample below
        let mut tx = pass_tx(&system);
        let start = std::time::Instant::now();
        cv.wait(&mut tx).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the watchdog must bound the lost-signal sleep"
        );
        assert_eq!(tx.reopened, 1);
        assert!(
            tx.thread().stats.snapshot().watchdog_redeliveries >= 1,
            "the recovery must be visible in the stats"
        );
    }

    #[test]
    fn stats_count_waits_and_signals() {
        let system = TmSystem::new(TmConfig::small());
        let cv = TmCondVar::new();
        let mut tx = pass_tx(&system);
        cv.signal_from(&mut tx);
        cv.broadcast_from(&mut tx);
        // A wait would block forever here, so only check signal accounting.
        assert_eq!(tx.thread().stats.snapshot().condvar_signals, 2);
    }
}
