//! Timed and cancellable condition synchronization.
//!
//! The paper's `Retry` / `Await` / `WaitPred` model unbounded blocking, but
//! every production synchronization API this reproduction mirrors — pthread
//! condition variables, semaphores, bounded buffers — also needs *timed*
//! waits.  This module adds deadline-carrying variants of the three
//! constructs ([`retry_for`], [`await_for`], [`wait_pred_for`]) plus an
//! out-of-band [`cancel`] API, all built on the timed deschedule
//! (`tm_core::driver::deschedule_until`).
//!
//! # How a timed wait flows
//!
//! 1. The body calls, say, [`retry_for`]`(tx, timeout)`.  The construct
//!    stashes `now + timeout` in the attempt metadata
//!    ([`tm_core::TxCommon::wait_deadline`]) and requests the same
//!    deschedule as the unbounded form.
//! 2. The driver loop rolls the transaction back, materialises the wait
//!    condition, and parks the thread with that deadline.  The sleep ends
//!    with exactly one [`WakeReason`]: `Woken` (a writer established the
//!    condition), `Timeout` (deadline passed — delivered by the lazily
//!    polled timer wheel or the sleeper's own bounded semaphore wait), or
//!    `Cancelled` (someone called [`cancel`]).
//! 3. The driver re-executes the body with the reason visible through
//!    [`wake_reason`] / [`timed_out`] / [`was_cancelled`].  The body
//!    re-checks its condition first — if it now holds, the wait succeeded
//!    regardless of the reason — and otherwise gives up instead of waiting
//!    again.
//!
//! The re-check-first idiom (also what `pthread_cond_timedwait` callers do)
//! is what the `tm-sync` timed operations implement:
//!
//! ```text
//! if !condition(tx)? {
//!     if condsync::wait_interrupted(tx) { return Ok(None); }  // give up
//!     return condsync::retry_for(tx, timeout);                // wait (more)
//! }
//! ... proceed ...
//! ```
//!
//! # Scope
//!
//! The reason applies to the transaction's **most recent** deschedule: a
//! body that performs several independent waits in one transaction should
//! check [`wake_reason`] at the wait it just resumed from.  Each timed
//! construct computes its deadline at call time, so a wait that is woken
//! spuriously (condition no longer true by re-execution) and re-waits gets a
//! fresh full timeout; callers needing an absolute overall deadline can
//! compute the remaining budget themselves.
//!
//! `Retry-Orig` (the lock-metadata baseline) and the non-sleeping baselines
//! (`Restart`, the lock-based mechanisms) have no timed variants.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tm_core::{
    Addr, PredFn, ThreadId, TmSystem, Tx, TxCtl, TxResult, WaitSpec, Waiter, WakeReason,
};

/// Timed `Retry`: like [`crate::retry`], but the wait resolves as
/// [`WakeReason::Timeout`] once `timeout` elapses without any location in
/// the failed attempt's read set changing value.
///
/// Never returns `Ok`; the `T` parameter lets call sites use it in tail
/// position of any expression type.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use tm_core::{TmConfig, TmRt, TmSystem, TmVar};
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let th = system.register_thread();
/// let flag = TmVar::<u64>::alloc(&system, 0);
///
/// // Nobody ever sets the flag, so the bounded wait gives up: after the
/// // timeout the body is re-executed with `timed_out(tx)` true.
/// let got = rt.atomically(&th, |tx| {
///     if flag.get(tx)? == 0 {
///         if condsync::timed_out(tx) {
///             return Ok(None); // deadline passed, report failure
///         }
///         return condsync::retry_for(tx, Duration::from_millis(20));
///     }
///     Ok(Some(flag.get(tx)?))
/// });
/// assert_eq!(got, None);
/// ```
pub fn retry_for<T>(tx: &mut dyn Tx, timeout: Duration) -> TxResult<T> {
    tx.common_mut().wait_deadline = Some(Instant::now() + timeout);
    Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
}

/// Timed `Await`: like [`crate::await_addrs`], but bounded by `timeout`.
pub fn await_for<T>(tx: &mut dyn Tx, addrs: &[Addr], timeout: Duration) -> TxResult<T> {
    tx.common_mut().wait_deadline = Some(Instant::now() + timeout);
    Err(TxCtl::Deschedule(WaitSpec::Addrs(addrs.to_vec())))
}

/// Timed single-address `Await` (the common case), bounded by `timeout`.
pub fn await_one_for<T>(tx: &mut dyn Tx, addr: Addr, timeout: Duration) -> TxResult<T> {
    await_for(tx, &[addr], timeout)
}

/// Timed `WaitPred`: like [`crate::wait_pred`], but bounded by `timeout`.
pub fn wait_pred_for<T>(
    tx: &mut dyn Tx,
    pred: PredFn,
    args: &[u64],
    timeout: Duration,
) -> TxResult<T> {
    tx.common_mut().wait_deadline = Some(Instant::now() + timeout);
    Err(TxCtl::Deschedule(WaitSpec::Pred {
        f: pred,
        args: args.to_vec(),
    }))
}

/// How this transaction's most recent deschedule ended, or `None` if it has
/// not descheduled (in this `atomically` call).
pub fn wake_reason(tx: &dyn Tx) -> Option<WakeReason> {
    tx.common().wake_reason
}

/// True if this transaction's most recent wait ended because its deadline
/// passed.
pub fn timed_out(tx: &dyn Tx) -> bool {
    wake_reason(tx) == Some(WakeReason::Timeout)
}

/// True if this transaction's most recent wait was ended by [`cancel`].
pub fn was_cancelled(tx: &dyn Tx) -> bool {
    wake_reason(tx) == Some(WakeReason::Cancelled)
}

/// True if this transaction's most recent wait ended without the condition
/// being established (timeout or cancellation) — the "give up" test used by
/// the timed operations in `tm-sync`.
pub fn wait_interrupted(tx: &dyn Tx) -> bool {
    matches!(
        wake_reason(tx),
        Some(WakeReason::Timeout) | Some(WakeReason::Cancelled)
    )
}

/// Consumes the recorded wake reason: subsequent [`wake_reason`] /
/// [`timed_out`] / [`wait_interrupted`] calls in this attempt see `None`.
///
/// A timed operation must call this when its wait *resolves* — whether it
/// succeeds (the condition held, possibly despite a recorded timeout) or
/// gives up — so that a later, independent wait in the same transaction
/// body starts fresh instead of inheriting a stale `Timeout`/`Cancelled`.
/// The `tm-sync` timed operations follow this discipline; hand-rolled
/// bodies composing several waits should too.
///
/// The clear is per-attempt: if the attempt later aborts on a conflict, the
/// driver re-seeds the reason for the re-execution, so the give-up decision
/// remains stable until the transaction commits or waits again.
pub fn clear_wake_reason(tx: &mut dyn Tx) {
    tx.common_mut().wake_reason = None;
}

/// Ends `waiter`'s wait with [`WakeReason::Cancelled`].
///
/// Returns `true` if this call won the claim (the sleeper will observe
/// `Cancelled`); `false` if the waiter was already woken, timed out, or
/// cancelled.  Safe to call from any thread, including threads that never
/// run transactions; the cancelled transaction is re-executed by its driver
/// loop and decides for itself what cancellation means (the `tm-sync` timed
/// operations treat it like a timeout and return "no result").
pub fn cancel(waiter: &Arc<Waiter>) -> bool {
    if waiter.claim(WakeReason::Cancelled) {
        waiter.sem.post();
        true
    } else {
        false
    }
}

/// Cancels whatever wait `thread` currently has published in `system`'s
/// waiter registry.
///
/// Returns `true` if a sleeping waiter was found and this call cancelled it.
/// This is the discovery-by-thread-id convenience over [`cancel`]; it walks
/// the registry, so it belongs on control paths (shutdown, watchdogs), not
/// hot paths.
pub fn cancel_thread(system: &TmSystem, thread: ThreadId) -> bool {
    match system.waiters.find_by_thread(thread) {
        Some(w) => cancel(&w),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Semaphore, TmConfig, WaitCondition};

    #[test]
    fn cancel_claims_and_signals_exactly_once() {
        let w = Waiter::new(
            3,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        );
        assert!(cancel(&w));
        assert!(!cancel(&w), "second cancel must lose the claim");
        assert_eq!(w.sem.permits(), 1, "exactly one signal");
        assert_eq!(w.wake_reason(), Some(WakeReason::Cancelled));
    }

    #[test]
    fn cancel_loses_to_an_earlier_wake() {
        let w = Waiter::new(
            3,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        );
        assert!(w.claim(WakeReason::Woken));
        assert!(!cancel(&w));
        assert_eq!(w.sem.permits(), 0, "losing cancel must not signal");
        assert_eq!(w.wake_reason(), Some(WakeReason::Woken));
    }

    #[test]
    fn cancel_thread_finds_the_registered_waiter() {
        let system = TmSystem::new(TmConfig::small());
        assert!(!cancel_thread(&system, 7), "empty registry: nothing to do");
        let w = Waiter::new(
            7,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        );
        let stripes = w.condition.stripes(&system.orecs);
        system.waiters.register(Arc::clone(&w), &stripes);
        assert!(cancel_thread(&system, 7));
        assert_eq!(w.wake_reason(), Some(WakeReason::Cancelled));
        assert!(!cancel_thread(&system, 7), "already claimed");
        system.waiters.deregister(&w, &stripes);
    }
}
