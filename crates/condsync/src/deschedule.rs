//! The Deschedule abstract mechanism (Algorithm 4) — re-exported.
//!
//! `deschedule` and `wake_waiters` are conceptually this crate's heart, but
//! they are invoked exclusively by the unified driver loop in
//! [`tm_core::driver`], which cannot depend on this crate (the dependency
//! runs the other way).  The implementation therefore lives next to the
//! driver, and this module preserves the public `condsync::deschedule` /
//! `condsync::wake_waiters` paths the rest of the workspace and the paper's
//! pseudocode naming use.
//!
//! See [`tm_core::driver::deschedule`] for the full protocol description:
//! publish-then-double-check parking, at-most-one signal per sleep, and the
//! committed-writer `wakeWaiters` scan.

pub use tm_core::driver::{deschedule, wake_waiters, DescheduleOutcome};
