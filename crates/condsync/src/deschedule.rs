//! The Deschedule abstract mechanism (Algorithm 4) — re-exported.
//!
//! `deschedule` and `wake_waiters(_matching)` are conceptually this crate's
//! heart, but they are invoked exclusively by the unified driver loop in
//! [`tm_core::driver`], which cannot depend on this crate (the dependency
//! runs the other way).  The implementation therefore lives next to the
//! driver, and this module preserves the public `condsync::deschedule` /
//! `condsync::wake_waiters` paths the rest of the workspace and the paper's
//! pseudocode naming use.
//!
//! `deschedule` publishes the waiter in the sharded registry under the
//! stripes of its wait condition (see the crate docs for how each `WaitSpec`
//! variant maps to shards); `wake_waiters_matching` is the targeted
//! committed-writer scan, and `wake_waiters` its conservative
//! scan-every-shard form.
//!
//! See [`tm_core::driver::deschedule`] for the full protocol description:
//! publish-then-double-check parking, at-most-one signal per sleep, and the
//! committed-writer `wakeWaiters` scan.

pub use tm_core::driver::{
    deschedule, deschedule_until, wake_waiters, wake_waiters_matching, DescheduleOutcome,
};
pub use tm_core::WakeReason;
