//! The condition-synchronization mechanisms: the user-facing constructs and
//! the enumeration the evaluation sweeps over.
//!
//! # Constructs
//!
//! [`retry`], [`await_addrs`] / [`await_one`], [`wait_pred`], [`retry_orig`]
//! and [`restart`] are called from *inside* a transaction body and return an
//! `Err(TxCtl::…)` that the body must propagate with `?`.  The unified
//! driver loop ([`tm_core::driver::run`]) then rolls the transaction back
//! and performs the requested action (deschedule, mode switch, or plain
//! restart).  This mirrors the paper's presentation, where `Retry`, `Await`
//! and `WaitPred` all reduce to `Deschedule(f, p)` after the transaction's
//! effects have been undone.
//!
//! # Enumeration
//!
//! [`Mechanism`] names the seven schemes of §2.4 — the five constructs above
//! plus the `Pthreads` and `TMCondVar` baselines — so workloads and figure
//! binaries can sweep over them uniformly.
//!
//! (Historically these lived in two separate modules, `mechanism` and
//! `mechanisms`; they are one module now.)

use std::fmt;
use std::str::FromStr;

use tm_core::{Addr, PredFn, Tx, TxCtl, TxResult, WaitSpec};

/// Explicit-abort code used by the [`restart`] baseline.
pub const RESTART_ABORT_CODE: u8 = 0xFE;

/// `Retry` (Algorithm 5): undo the transaction and sleep until some location
/// it read changes value.
///
/// The runtime handles the two-phase protocol: if the current attempt was not
/// logging `(addr, value)` pairs (first software attempt, or a hardware
/// attempt, which cannot log values at all), it restarts the transaction in
/// value-logging software mode; once the value log is populated the
/// transaction is descheduled with a [`WaitSpec::ReadSetValues`] condition.
/// The value log itself is a pooled, hash-indexed
/// [`tm_core::access::WriteLog`] in first-value-wins mode
/// ([`tm_core::TxCommon::waitset`]), so re-reads deduplicate in O(1) and
/// re-logging attempts recycle the log's capacity.
///
/// Never returns `Ok`; the `T` parameter lets call sites use it in tail
/// position of any expression type.  For a deadline-bounded variant see
/// [`crate::retry_for`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_core::{TmConfig, TmRt, TmSystem, TmVar};
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let flag = TmVar::<u64>::alloc(&system, 0);
///
/// // A waiter blocks until *something it read* changes value...
/// let (rt2, system2, flag2) = (Arc::clone(&rt), Arc::clone(&system), flag.clone());
/// let waiter = std::thread::spawn(move || {
///     let th = system2.register_thread();
///     rt2.atomically(&th, |tx| {
///         let v = flag2.get(tx)?;
///         if v == 0 {
///             return condsync::retry(tx);
///         }
///         Ok(v)
///     })
/// });
///
/// // ...and a writer's commit wakes it.
/// let th = system.register_thread();
/// rt.atomically(&th, |tx| flag.set(tx, 9));
/// assert_eq!(waiter.join().unwrap(), 9);
/// ```
pub fn retry<T>(tx: &mut dyn Tx) -> TxResult<T> {
    // Unbounded: clear any deadline a timed construct stashed earlier in
    // this attempt, so the deschedule request carries exactly its own.
    tx.common_mut().wait_deadline = None;
    Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
}

/// `Await` (Algorithm 6): undo the transaction and sleep until one of the
/// given addresses changes value.
///
/// The addresses should have been read by the transaction (the paper assumes
/// this and our runtimes validate it during rollback); the runtime captures
/// their pre-transaction values after undoing the transaction's writes, while
/// its locks are still held, so the snapshot is consistent.  For a
/// deadline-bounded variant see [`crate::await_for`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_core::{TmConfig, TmRt, TmSystem, TmVar};
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let count = TmVar::<u64>::alloc(&system, 0);
///
/// let (rt2, system2, count2) = (Arc::clone(&rt), Arc::clone(&system), count.clone());
/// let waiter = std::thread::spawn(move || {
///     let th = system2.register_thread();
///     rt2.atomically(&th, |tx| {
///         let v = count2.get(tx)?;
///         if v == 0 {
///             // Wait on exactly this address, as Fig. 2.2 waits on <&count>.
///             return condsync::await_addrs(tx, &[count2.addr()]);
///         }
///         Ok(v)
///     })
/// });
///
/// let th = system.register_thread();
/// rt.atomically(&th, |tx| count.set(tx, 1));
/// assert_eq!(waiter.join().unwrap(), 1);
/// ```
pub fn await_addrs<T>(tx: &mut dyn Tx, addrs: &[Addr]) -> TxResult<T> {
    tx.common_mut().wait_deadline = None;
    Err(TxCtl::Deschedule(WaitSpec::Addrs(addrs.to_vec())))
}

/// Convenience wrapper for awaiting a single address (the common case in the
/// paper's bounded buffer, which waits on `&count`).
pub fn await_one<T>(tx: &mut dyn Tx, addr: Addr) -> TxResult<T> {
    await_addrs(tx, &[addr])
}

/// `WaitPred` (Algorithm 7): undo the transaction and sleep until `pred`
/// evaluates to true.
///
/// `args` are marshalled *by value* into the wait record: the paper notes the
/// waiter cannot point at objects it wrote, because those writes are undone
/// before the record is published.  For a deadline-bounded variant see
/// [`crate::wait_pred_for`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_core::{Addr, TmConfig, TmRt, TmSystem, TmVar, Tx, TxResult};
///
/// // Predicates are plain functions over transactional state.
/// fn at_least(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
///     Ok(tx.read(Addr(args[0] as usize))? >= args[1])
/// }
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let count = TmVar::<u64>::alloc(&system, 0);
///
/// let (rt2, system2, count2) = (Arc::clone(&rt), Arc::clone(&system), count.clone());
/// let waiter = std::thread::spawn(move || {
///     let th = system2.register_thread();
///     rt2.atomically(&th, |tx| {
///         let v = count2.get(tx)?;
///         if v < 2 {
///             // Immune to false wake-ups: only predicate-true commits wake us.
///             return condsync::wait_pred(tx, at_least, &[count2.addr().0 as u64, 2]);
///         }
///         Ok(v)
///     })
/// });
///
/// let th = system.register_thread();
/// for _ in 0..2 {
///     rt.atomically(&th, |tx| {
///         let v = count.get(tx)?;
///         count.set(tx, v + 1)
///     });
/// }
/// assert_eq!(waiter.join().unwrap(), 2);
/// ```
pub fn wait_pred<T>(tx: &mut dyn Tx, pred: PredFn, args: &[u64]) -> TxResult<T> {
    tx.common_mut().wait_deadline = None;
    Err(TxCtl::Deschedule(WaitSpec::Pred {
        f: pred,
        args: args.to_vec(),
    }))
}

/// The original lock-metadata `Retry` (Algorithm 1), kept as the `Retry-Orig`
/// baseline.  Supported by the software runtimes only; has no timed variant
/// (the separate Retry-Orig registry carries no deadlines).
pub fn retry_orig<T>(tx: &mut dyn Tx) -> TxResult<T> {
    tx.common_mut().wait_deadline = None;
    Err(TxCtl::Deschedule(WaitSpec::OrigReadLocks))
}

/// The `Restart` baseline: abort and immediately re-execute the transaction
/// without sleeping.  Equivalent to a Conditional-Critical-Region retry loop.
pub fn restart<T>(tx: &mut dyn Tx) -> TxResult<T> {
    Err(tx.explicit_abort(RESTART_ABORT_CODE))
}

#[cfg(test)]
mod construct_tests {
    use super::*;
    use std::sync::Arc;
    use tm_core::{AbortReason, TmConfig, TmSystem, TxCommon, TxMode};

    struct NullTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for NullTx {
        fn read(&mut self, _addr: Addr) -> TxResult<u64> {
            Ok(0)
        }
        fn write(&mut self, _addr: Addr, _val: u64) -> TxResult<()> {
            Ok(())
        }
        fn alloc(&mut self, _words: usize) -> TxResult<Addr> {
            Ok(Addr(1))
        }
        fn free(&mut self, _addr: Addr, _words: usize) -> TxResult<()> {
            Ok(())
        }
        fn commit_and_reopen(&mut self, _block: &mut dyn FnMut()) -> TxResult<()> {
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn null_tx() -> NullTx {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        NullTx {
            common: TxCommon::new(th, TxMode::Software, 0),
            system,
        }
    }

    #[test]
    fn retry_requests_readset_deschedule() {
        let mut tx = null_tx();
        match retry::<()>(&mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn await_carries_address_list() {
        let mut tx = null_tx();
        match await_addrs::<()>(&mut tx, &[Addr(3), Addr(9)]) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![Addr(3), Addr(9)]),
            other => panic!("unexpected: {other:?}"),
        }
        match await_one::<()>(&mut tx, Addr(5)) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![Addr(5)]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn wait_pred_carries_function_and_args() {
        fn p(_tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(args[0] > 0)
        }
        let mut tx = null_tx();
        match wait_pred::<()>(&mut tx, p, &[7, 8]) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => assert_eq!(args, vec![7, 8]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn retry_orig_requests_lock_based_deschedule() {
        let mut tx = null_tx();
        match retry_orig::<()>(&mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::OrigReadLocks)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn restart_is_an_explicit_abort() {
        let mut tx = null_tx();
        match restart::<()>(&mut tx) {
            Err(TxCtl::Abort(AbortReason::Explicit(code))) => assert_eq!(code, RESTART_ABORT_CODE),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unbounded_constructs_clear_a_stale_deadline() {
        let mut tx = null_tx();
        tx.common_mut().wait_deadline = Some(std::time::Instant::now());
        let _ = retry::<()>(&mut tx);
        assert!(tx.common().wait_deadline.is_none());

        tx.common_mut().wait_deadline = Some(std::time::Instant::now());
        let _ = await_addrs::<()>(&mut tx, &[Addr(1)]);
        assert!(tx.common().wait_deadline.is_none());

        fn p(_: &mut dyn Tx, _: &[u64]) -> TxResult<bool> {
            Ok(true)
        }
        tx.common_mut().wait_deadline = Some(std::time::Instant::now());
        let _ = wait_pred::<()>(&mut tx, p, &[]);
        assert!(tx.common().wait_deadline.is_none());

        tx.common_mut().wait_deadline = Some(std::time::Instant::now());
        let _ = retry_orig::<()>(&mut tx);
        assert!(tx.common().wait_deadline.is_none());
    }
}

/// The seven condition-synchronization mechanisms of §2.4.
///
/// # Examples
///
/// Workloads sweep over the enumeration and dispatch to the matching
/// construct; the labels round-trip through [`FromStr`] so harness CLI
/// arguments and figure legends agree:
///
/// ```
/// use condsync::Mechanism;
///
/// for m in Mechanism::ALL {
///     assert_eq!(m.label().parse::<Mechanism>().unwrap(), m);
/// }
/// assert!(Mechanism::Retry.is_deschedule_based());
/// assert!(!Mechanism::RetryOrig.supports_htm());
/// assert_eq!("retry-orig".parse::<Mechanism>(), Ok(Mechanism::RetryOrig));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mechanism {
    /// Locks + POSIX-style condition variables (no transactions at all).
    Pthreads,
    /// Transactions + transaction-safe condition variables (breaks atomicity
    /// at the wait point).
    TmCondVar,
    /// The paper's predicate-based mechanism (Algorithm 7).
    WaitPred,
    /// The paper's explicit-address mechanism (Algorithm 6).
    Await,
    /// The paper's value-based Retry (Algorithm 5).
    Retry,
    /// The original lock-metadata Retry (Algorithm 1); software runtimes only.
    RetryOrig,
    /// Abort-and-immediately-restart baseline (no sleeping).
    Restart,
}

impl Mechanism {
    /// All mechanisms, in the order the paper's figure legends list them.
    pub const ALL: [Mechanism; 7] = [
        Mechanism::Pthreads,
        Mechanism::TmCondVar,
        Mechanism::WaitPred,
        Mechanism::Await,
        Mechanism::Retry,
        Mechanism::RetryOrig,
        Mechanism::Restart,
    ];

    /// The mechanisms that run on the HTM configuration (Retry-Orig is
    /// STM-only, so Figures 2.5 and 2.8 omit it).
    pub const HTM_SET: [Mechanism; 6] = [
        Mechanism::Pthreads,
        Mechanism::TmCondVar,
        Mechanism::WaitPred,
        Mechanism::Await,
        Mechanism::Retry,
        Mechanism::Restart,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Pthreads => "Pthreads",
            Mechanism::TmCondVar => "TMCondVar",
            Mechanism::WaitPred => "WaitPred",
            Mechanism::Await => "Await",
            Mechanism::Retry => "Retry",
            Mechanism::RetryOrig => "Retry-Orig",
            Mechanism::Restart => "Restart",
        }
    }

    /// True for the three mechanisms the paper introduces (all built on
    /// Deschedule).
    pub fn is_deschedule_based(self) -> bool {
        matches!(
            self,
            Mechanism::WaitPred | Mechanism::Await | Mechanism::Retry
        )
    }

    /// True if the mechanism uses transactions at all.
    pub fn is_transactional(self) -> bool {
        self != Mechanism::Pthreads
    }

    /// True if the mechanism can run on the HTM configuration.
    pub fn supports_htm(self) -> bool {
        self != Mechanism::RetryOrig
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Mechanism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace(['-', '_'], "");
        Ok(match norm.as_str() {
            "pthreads" | "pthread" | "lock" => Mechanism::Pthreads,
            "tmcondvar" | "condvar" => Mechanism::TmCondVar,
            "waitpred" => Mechanism::WaitPred,
            "await" => Mechanism::Await,
            "retry" => Mechanism::Retry,
            "retryorig" | "orig" => Mechanism::RetryOrig,
            "restart" => Mechanism::Restart,
            _ => return Err(format!("unknown mechanism: {s}")),
        })
    }
}

#[cfg(test)]
mod enum_tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Mechanism::Pthreads.label(), "Pthreads");
        assert_eq!(Mechanism::RetryOrig.label(), "Retry-Orig");
        assert_eq!(Mechanism::ALL.len(), 7);
        assert_eq!(Mechanism::HTM_SET.len(), 6);
    }

    #[test]
    fn htm_set_excludes_retry_orig() {
        assert!(!Mechanism::HTM_SET.contains(&Mechanism::RetryOrig));
        assert!(!Mechanism::RetryOrig.supports_htm());
        assert!(Mechanism::Retry.supports_htm());
    }

    #[test]
    fn classification() {
        assert!(Mechanism::Retry.is_deschedule_based());
        assert!(Mechanism::Await.is_deschedule_based());
        assert!(Mechanism::WaitPred.is_deschedule_based());
        assert!(!Mechanism::TmCondVar.is_deschedule_based());
        assert!(!Mechanism::Pthreads.is_transactional());
        assert!(Mechanism::Restart.is_transactional());
    }

    #[test]
    fn parsing_accepts_legend_spellings() {
        assert_eq!(
            "Retry-Orig".parse::<Mechanism>().unwrap(),
            Mechanism::RetryOrig
        );
        assert_eq!(
            "waitpred".parse::<Mechanism>().unwrap(),
            Mechanism::WaitPred
        );
        assert_eq!(
            "PTHREADS".parse::<Mechanism>().unwrap(),
            Mechanism::Pthreads
        );
        assert_eq!(
            "TMCondVar".parse::<Mechanism>().unwrap(),
            Mechanism::TmCondVar
        );
        assert!("bogus".parse::<Mechanism>().is_err());
    }

    #[test]
    fn display_round_trips_through_fromstr() {
        for m in Mechanism::ALL {
            assert_eq!(m.to_string().parse::<Mechanism>().unwrap(), m);
        }
    }
}
