//! Enumeration of the condition-synchronization mechanisms compared in the
//! evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The seven condition-synchronization mechanisms of §2.4.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Mechanism {
    /// Locks + POSIX-style condition variables (no transactions at all).
    Pthreads,
    /// Transactions + transaction-safe condition variables (breaks atomicity
    /// at the wait point).
    TmCondVar,
    /// The paper's predicate-based mechanism (Algorithm 7).
    WaitPred,
    /// The paper's explicit-address mechanism (Algorithm 6).
    Await,
    /// The paper's value-based Retry (Algorithm 5).
    Retry,
    /// The original lock-metadata Retry (Algorithm 1); software runtimes only.
    RetryOrig,
    /// Abort-and-immediately-restart baseline (no sleeping).
    Restart,
}

impl Mechanism {
    /// All mechanisms, in the order the paper's figure legends list them.
    pub const ALL: [Mechanism; 7] = [
        Mechanism::Pthreads,
        Mechanism::TmCondVar,
        Mechanism::WaitPred,
        Mechanism::Await,
        Mechanism::Retry,
        Mechanism::RetryOrig,
        Mechanism::Restart,
    ];

    /// The mechanisms that run on the HTM configuration (Retry-Orig is
    /// STM-only, so Figures 2.5 and 2.8 omit it).
    pub const HTM_SET: [Mechanism; 6] = [
        Mechanism::Pthreads,
        Mechanism::TmCondVar,
        Mechanism::WaitPred,
        Mechanism::Await,
        Mechanism::Retry,
        Mechanism::Restart,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Pthreads => "Pthreads",
            Mechanism::TmCondVar => "TMCondVar",
            Mechanism::WaitPred => "WaitPred",
            Mechanism::Await => "Await",
            Mechanism::Retry => "Retry",
            Mechanism::RetryOrig => "Retry-Orig",
            Mechanism::Restart => "Restart",
        }
    }

    /// True for the three mechanisms the paper introduces (all built on
    /// Deschedule).
    pub fn is_deschedule_based(self) -> bool {
        matches!(self, Mechanism::WaitPred | Mechanism::Await | Mechanism::Retry)
    }

    /// True if the mechanism uses transactions at all.
    pub fn is_transactional(self) -> bool {
        self != Mechanism::Pthreads
    }

    /// True if the mechanism can run on the HTM configuration.
    pub fn supports_htm(self) -> bool {
        self != Mechanism::RetryOrig
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Mechanism {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase().replace(['-', '_'], "");
        Ok(match norm.as_str() {
            "pthreads" | "pthread" | "lock" => Mechanism::Pthreads,
            "tmcondvar" | "condvar" => Mechanism::TmCondVar,
            "waitpred" => Mechanism::WaitPred,
            "await" => Mechanism::Await,
            "retry" => Mechanism::Retry,
            "retryorig" | "orig" => Mechanism::RetryOrig,
            "restart" => Mechanism::Restart,
            _ => return Err(format!("unknown mechanism: {s}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Mechanism::Pthreads.label(), "Pthreads");
        assert_eq!(Mechanism::RetryOrig.label(), "Retry-Orig");
        assert_eq!(Mechanism::ALL.len(), 7);
        assert_eq!(Mechanism::HTM_SET.len(), 6);
    }

    #[test]
    fn htm_set_excludes_retry_orig() {
        assert!(!Mechanism::HTM_SET.contains(&Mechanism::RetryOrig));
        assert!(!Mechanism::RetryOrig.supports_htm());
        assert!(Mechanism::Retry.supports_htm());
    }

    #[test]
    fn classification() {
        assert!(Mechanism::Retry.is_deschedule_based());
        assert!(Mechanism::Await.is_deschedule_based());
        assert!(Mechanism::WaitPred.is_deschedule_based());
        assert!(!Mechanism::TmCondVar.is_deschedule_based());
        assert!(!Mechanism::Pthreads.is_transactional());
        assert!(Mechanism::Restart.is_transactional());
    }

    #[test]
    fn parsing_accepts_legend_spellings() {
        assert_eq!("Retry-Orig".parse::<Mechanism>().unwrap(), Mechanism::RetryOrig);
        assert_eq!("waitpred".parse::<Mechanism>().unwrap(), Mechanism::WaitPred);
        assert_eq!("PTHREADS".parse::<Mechanism>().unwrap(), Mechanism::Pthreads);
        assert_eq!("TMCondVar".parse::<Mechanism>().unwrap(), Mechanism::TmCondVar);
        assert!("bogus".parse::<Mechanism>().is_err());
    }

    #[test]
    fn display_round_trips_through_fromstr() {
        for m in Mechanism::ALL {
            assert_eq!(m.to_string().parse::<Mechanism>().unwrap(), m);
        }
    }
}
