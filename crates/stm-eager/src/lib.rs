//! An eager (undo-log, encounter-time locking) software TM, following the
//! paper's Appendix A (Algorithms 8–11), in the style of TinySTM and the GCC
//! libitm "ml-wt" method the paper evaluates as **Eager STM**.
//!
//! * Writes acquire the ownership record covering the address at encounter
//!   time, log the old value in an undo log, and update memory in place.
//! * Reads are validated against the global version clock at the time they
//!   happen (giving opacity) and re-validated at commit.
//! * Commit increments the global clock, validates the read set (with the
//!   TL2-style fast path when no other writer intervened), releases locks at
//!   the new version, performs deferred frees and quiesces for privatization
//!   safety.
//! * Abort undoes writes in reverse order, releases locks at `version + 1`,
//!   blindly bumps the clock, and undoes transactional allocations.
//!
//! Condition synchronization is layered on via the *shared* driver loop in
//! `tm_core::driver`: [`runtime::EagerStm`] implements the narrow
//! `TxEngine` interface (begin / commit / rollback / materialise-wait plus
//! the `Retry-Orig` hooks), and the loop owns re-execution, the deschedule
//! hand-off to [`condsync::deschedule()`], and the post-commit
//! [`condsync::wake_waiters`] scan.  `Await` still captures its value
//! snapshot while this runtime's locks are held (see
//! [`tx::EagerTx::rollback_for_deschedule`]).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod runtime;
pub mod tx;

pub use runtime::EagerStm;
pub use tx::EagerTx;
