//! The eager-STM runtime: a thin [`TxEngine`] over [`EagerTx`].
//!
//! All driver-loop logic (re-execution, abort dispatch, `Retry` value-log
//! restarts, deschedule hand-off, post-commit wake-ups, backoff) lives in
//! [`tm_core::driver::run`]; this file only wires the eager attempt type and
//! the `Retry-Orig` registry into that loop.

use std::sync::Arc;

use condsync::OrigRegistry;
use tm_core::driver::{self, CommitOutcome, TxEngine};
use tm_core::{
    ThreadCtx, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxKind, TxResult, WaitCondition,
    WaitSpec, WakeSet,
};

use crate::tx::EagerTx;

/// The eager (undo-log) software TM runtime.
#[derive(Debug)]
pub struct EagerStm {
    system: Arc<TmSystem>,
    /// Waiting list for the `Retry-Orig` baseline (Algorithm 1).
    orig: OrigRegistry,
}

impl EagerStm {
    /// Creates a runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        Arc::new(EagerStm {
            system,
            orig: OrigRegistry::new(),
        })
    }

    /// The `Retry-Orig` waiting list (exposed for tests).
    pub fn orig_registry(&self) -> &OrigRegistry {
        &self.orig
    }
}

impl TxEngine for EagerStm {
    type Tx<'eng> = EagerTx;

    fn begin(&self, common: TxCommon) -> EagerTx {
        EagerTx::begin(&self.system, common)
    }

    fn try_commit(&self, tx: &mut EagerTx) -> Result<CommitOutcome, TxCtl> {
        tx.try_commit()
    }

    fn rollback(&self, tx: &mut EagerTx) {
        tx.rollback();
    }

    fn materialise_wait(&self, tx: &mut EagerTx, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        tx.rollback_for_deschedule(spec)
    }

    fn supports_orig_retry(&self) -> bool {
        true
    }

    fn committed_stripes(&self, outcome: &CommitOutcome) -> WakeSet {
        if outcome.serial {
            // Serial commits write directly with no metadata at all;
            // conservatively wake every shard.
            return WakeSet::All;
        }
        // The lock set *is* the write set's stripe cover: every written
        // address hashed to one of these ownership records when its lock was
        // acquired, so a targeted scan over them cannot lose a wakeup.
        WakeSet::Stripes(outcome.written_orecs.clone())
    }

    fn deschedule_orig(&self, thread: &Arc<ThreadCtx>, tx: &mut EagerTx) {
        let read_orecs = tx.read_orec_indices();
        let start = tx.start();
        tx.rollback();
        condsync::sleep_until_intersection(&self.orig, thread, read_orecs.clone(), || {
            tm_core::access::cover_valid_at(&self.system.orecs, &read_orecs, start)
        });
    }

    fn after_writer_commit(&self, thread: &Arc<ThreadCtx>, outcome: &CommitOutcome) {
        if !self.orig.is_empty() {
            if outcome.serial {
                // A serial commit has no lock set to intersect: any
                // Retry-Orig sleeper's reads may have changed.
                self.orig.wake_all(thread);
            } else {
                self.orig.wake_matching(thread, &outcome.written_orecs);
            }
        }
    }
}

impl TmRuntime for EagerStm {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "eager-stm"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        driver::run(self, thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        driver::run(self, thread, body)
    }
}

impl TmRt for EagerStm {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run(self, thread, body)
    }

    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run_kind(self, thread, TxKind::ReadOnly, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Addr, TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<EagerStm>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = EagerStm::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 1);
        let got = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x + 10)?;
            Ok(x)
        });
        assert_eq!(got, 1);
        assert_eq!(v.load_direct(&system), 11);
        assert_eq!(th.stats.snapshot().sw_commits, 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for _ in 0..per_thread {
                    rt.atomically(&th, |tx| {
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
    }

    #[test]
    fn retry_sleeps_until_value_changes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 7));
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn await_sleeps_until_named_address_changes() {
        let (system, rt) = runtime();
        let x = TmVar::<u64>::alloc(&system, 0);
        let y = TmVar::<u64>::alloc(&system, 0);
        let (x2, y2) = (x.clone(), y.clone());
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = x2.get(tx)?;
                if v == 0 {
                    return condsync::await_one(tx, x2.addr());
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = system.register_thread();
        // Writing an unrelated variable must not wake the waiter for long:
        // it may re-check, but it cannot complete until x changes.
        rt.atomically(&th, |tx| y.set(tx, 1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        rt.atomically(&th, |tx| x.set(tx, 5));
        assert_eq!(waiter.join().unwrap(), 5);
        let _ = y2;
    }

    #[test]
    fn wait_pred_only_wakes_when_predicate_holds() {
        let (system, rt) = runtime();
        let count = TmVar::<u64>::alloc(&system, 0);
        fn at_least_three(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(Addr(args[0] as usize))? >= 3)
        }
        let count2 = count.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = count2.get(tx)?;
                if v < 3 {
                    return condsync::wait_pred(tx, at_least_three, &[count2.addr().0 as u64]);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let th = system.register_thread();
        for _ in 0..3 {
            rt.atomically(&th, |tx| {
                let v = count.get(tx)?;
                count.set(tx, v + 1)
            });
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn retry_orig_sleeps_and_is_woken_by_lock_intersection() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry_orig(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 9));
        assert_eq!(waiter.join().unwrap(), 9);
        assert_eq!(rt.orig_registry().len(), 0);
    }

    #[test]
    fn restart_baseline_spins_until_condition_holds() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let spinner = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::restart(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 4));
        assert_eq!(spinner.join().unwrap(), 4);
    }

    #[test]
    fn explicit_abort_stats_are_counted() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 1);
        let th = system.register_thread();
        let mut first = true;
        rt.atomically(&th, |tx| {
            let v = flag.get(tx)?;
            if first {
                first = false;
                return condsync::restart(tx);
            }
            Ok(v)
        });
        assert!(th.stats.snapshot().explicit_aborts >= 1);
    }
}
