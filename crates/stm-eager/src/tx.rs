//! The per-attempt transaction descriptor for the eager STM
//! (Algorithms 8–11 of the paper's Appendix A).

use std::sync::Arc;

use tm_core::access::{cover_valid_at, IndexSet, ReadSet, WriteLog};
use tm_core::driver::CommitOutcome;
use tm_core::serial::{subscribe_begin, SerialAttempt};
use tm_core::stats::TxStats;
use tm_core::{
    AbortReason, Addr, OrecValue, SnapshotMode, TmSystem, Tx, TxCommon, TxCtl, TxKind, TxMode,
    TxResult, WaitCondition, WaitSpec,
};

/// An in-flight eager-STM transaction attempt.
///
/// The read set, undo log and lock set are pooled access-set containers
/// (`tm_core::access`): read-after-write old-value lookups and lock-set
/// membership are O(1), the read set's orec cover stays sorted
/// incrementally, and a re-executed attempt inherits the previous
/// attempt's capacity through the thread's `LogPool`.
#[derive(Debug)]
pub struct EagerTx {
    common: TxCommon,
    system: Arc<TmSystem>,
    /// Global-clock value sampled at begin (Algorithm 9, `start`).
    start: u64,
    /// Addresses read by the transaction (Algorithm 8, `reads`), with their
    /// orec stripes cached at read time.
    reads: ReadSet,
    /// Old values of written locations (Algorithm 8, `undos`): one entry
    /// per address holding the pre-transaction value.
    undos: WriteLog,
    /// Ownership-record indices held by this transaction (Algorithm 8, `locks`).
    locks: IndexSet,
    /// Transactional allocations, undone on abort.
    mallocs: Vec<(Addr, usize)>,
    /// Deferred frees, performed at commit.
    frees: Vec<(Addr, usize)>,
    /// `Some` when this attempt runs serially behind the system's
    /// [`tm_core::SerialGate`] ([`TxMode::Serial`]): all accesses go
    /// straight to the shared serial attempt, the instrumented logs stay
    /// empty.
    serial: Option<SerialAttempt>,
    /// True when this attempt runs on the snapshot read path: a declared
    /// read-only transaction in plain [`TxMode::Software`] mode with
    /// [`SnapshotMode`] enabled.  Reads validate against `start` only, no
    /// read set is kept, writes abort with
    /// [`AbortReason::ReadOnlyWrite`], and the commit is free.
    snapshot: bool,
    /// Whether the snapshot attempt has completed at least one read
    /// (gates the [`SnapshotMode::On`] first-read refresh).
    snap_observed: bool,
    /// The distinct orec stripes read so far, kept only under
    /// [`SnapshotMode::Extend`] so a too-new version can be survived by
    /// re-checking that no covered stripe moved past `start`.
    snap_cover: IndexSet,
}

impl EagerTx {
    /// Begins a new attempt: samples the clock and publishes the start time
    /// for quiescence (through the serial gate's subscription protocol), or
    /// acquires the serial gate for [`TxMode::Serial`] attempts.
    pub fn begin(system: &Arc<TmSystem>, common: TxCommon) -> Self {
        let (serial, start) = if common.mode == TxMode::Serial {
            (
                Some(SerialAttempt::begin(system, &common.thread)),
                system.clock.now(),
            )
        } else {
            (None, subscribe_begin(system, &common.thread))
        };
        let snapshot = common.kind == TxKind::ReadOnly
            && common.mode == TxMode::Software
            && system.config.snapshot.is_enabled();
        // Snapshot attempts keep no logs at all; skip the pool round trip
        // (zero-capacity containers are dropped, not pooled, on `put`).
        let (reads, undos, locks) = if snapshot {
            (ReadSet::new(), WriteLog::new(), IndexSet::new())
        } else {
            (
                common.thread.take_read_set(),
                common.thread.take_write_log(),
                common.thread.take_index_set(),
            )
        };
        let snap_cover = if snapshot && system.config.snapshot == SnapshotMode::Extend {
            common.thread.take_index_set()
        } else {
            IndexSet::new()
        };
        EagerTx {
            common,
            system: Arc::clone(system),
            start,
            reads,
            undos,
            locks,
            mallocs: Vec::new(),
            frees: Vec::new(),
            serial,
            snapshot,
            snap_observed: false,
            snap_cover,
        }
    }

    /// The clock value sampled at begin.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Ownership-record indices covering the read set (used by `Retry-Orig`),
    /// sorted and deduplicated — the read set's own stripe cover, not
    /// recomputed from the address list.
    pub fn read_orec_indices(&mut self) -> Vec<usize> {
        self.reads.orec_cover().to_vec()
    }

    fn me(&self) -> usize {
        self.common.thread.id
    }

    /// Records an `(addr, value)` pair in the Retry value log, substituting
    /// the pre-transaction value for locations this transaction has written
    /// (Algorithm 5, `TxRead` lines 2–5): after the rollback that accompanies
    /// a deschedule, memory holds the *old* value, so that is what the
    /// wake-up check must compare against.
    fn retry_log(&mut self, addr: Addr, observed: u64) {
        if self.common.mode != TxMode::SoftwareRetry {
            return;
        }
        let logged = self.undos.lookup(addr).unwrap_or(observed);
        self.common.log_retry_read(addr, logged);
    }

    /// One snapshot-path read: lock–value–lock against `start` only.  No
    /// read set, no value logging; a too-new version first tries a snapshot
    /// refresh ([`EagerTx::try_snapshot_refresh`]) before aborting.
    fn snapshot_read(&mut self, addr: Addr) -> TxResult<u64> {
        let idx = self.system.orecs.index_for(addr);
        loop {
            let before = self.system.orecs.load(idx);
            let val = self.system.heap.load(addr);
            let after = self.system.orecs.load(idx);
            if before == after && !before.is_locked() {
                if before.version() <= self.start {
                    self.snap_observed = true;
                    if self.system.config.snapshot == SnapshotMode::Extend {
                        self.snap_cover.insert(idx);
                    }
                    return Ok(val);
                }
                self.system
                    .clock
                    .note_stale(before.version(), &self.common.thread.stats);
                if self.try_snapshot_refresh() {
                    continue;
                }
            }
            return Err(TxCtl::Abort(AbortReason::ReadConflict));
        }
    }

    /// Attempts to advance the begin snapshot past a too-new version.
    ///
    /// Under [`SnapshotMode::On`] this is sound only before the first
    /// successful read (nothing has been observed, so any snapshot is still
    /// admissible).  Under [`SnapshotMode::Extend`] the accumulated stripe
    /// cover is re-checked at the *old* snapshot: if no covered stripe is
    /// locked or newer than `start`, no covered location changed between the
    /// old snapshot and now, so every prior read is also valid at the new
    /// one.  The new start is re-published through the serial-gate
    /// subscription handshake, exactly like a fresh begin.
    fn try_snapshot_refresh(&mut self) -> bool {
        let extendable = match self.system.config.snapshot {
            SnapshotMode::Extend => true,
            SnapshotMode::On => !self.snap_observed,
            SnapshotMode::Off => false,
        };
        if !extendable {
            return false;
        }
        self.common.thread.exit_tx();
        let new_start = subscribe_begin(&self.system, &self.common.thread);
        // Re-validate *after* the new snapshot is published: anything the
        // check admits was unchanged up to a point at or after `new_start`.
        if self.system.config.snapshot == SnapshotMode::Extend
            && !cover_valid_at(&self.system.orecs, self.snap_cover.as_slice(), self.start)
        {
            // A covered stripe moved; the attempt is doomed.  Keep the newly
            // published start — the caller aborts and the rollback exits.
            self.start = new_start;
            return false;
        }
        self.start = new_start;
        TxStats::bump(&self.common.thread.stats.snapshot_refreshes);
        true
    }

    /// Acquires the ownership record covering `addr` for writing, returning
    /// the orec index, or an abort if it is held by another transaction or
    /// is too new.
    fn acquire(&mut self, addr: Addr) -> TxResult<usize> {
        let idx = self.system.orecs.index_for(addr);
        let cur = self.system.orecs.load(idx);
        if cur.is_locked_by(self.me()) {
            return Ok(idx);
        }
        if !cur.is_locked() {
            if cur.version() <= self.start {
                let locked = OrecValue::locked(cur.version(), self.me());
                if self.system.orecs.cas(idx, cur, locked) {
                    self.locks.insert(idx);
                    return Ok(idx);
                }
            } else {
                // Too new: fold the version into the clock so the retry
                // begins current even before the committer publishes its
                // epoch (lazy clock plane; no-op under GV1).
                self.system
                    .clock
                    .note_stale(cur.version(), &self.common.thread.stats);
            }
        }
        Err(TxCtl::Abort(AbortReason::WriteConflict))
    }

    /// Rolls the attempt back: undoes writes in reverse order, releases locks
    /// at `version + 1`, bumps the clock, undoes allocations, and clears all
    /// logs (Algorithm 11).  Serial attempts undo their direct writes and
    /// release the gate.  Safe to call more than once.
    pub fn rollback(&mut self) {
        if let Some(serial) = &mut self.serial {
            serial.rollback();
            return;
        }
        for e in self.undos.iter().rev() {
            self.system.heap.store(e.addr, e.val);
        }
        for idx in self.locks.iter() {
            let cur = self.system.orecs.load(idx);
            self.system
                .orecs
                .store(idx, OrecValue::unlocked(cur.version() + 1));
        }
        if !self.locks.is_empty() {
            // Keep the bumped lock versions legal with respect to the clock
            // (Algorithm 11, line 5): a blind tick under GV1; in lazy mode
            // the inflated versions are covered by `note_stale` on the
            // reader side instead, so the shared line stays untouched.
            self.system.clock.rollback_bump(&self.common.thread.stats);
        }
        for &(addr, words) in &self.mallocs {
            self.system
                .heap
                .dealloc_for(&self.common.thread, addr, words);
        }
        self.reset_logs();
        self.common.thread.exit_tx();
    }

    fn reset_logs(&mut self) {
        let stats = &self.common.thread.stats;
        TxStats::record_max(&stats.read_set_max, self.reads.len() as u64);
        TxStats::record_max(&stats.write_set_max, self.undos.len() as u64);
        self.reads.clear();
        self.undos.clear();
        self.locks.clear();
        self.snap_cover.clear();
        self.snap_observed = false;
        self.mallocs.clear();
        self.frees.clear();
    }

    /// Attempts to commit (Algorithm 9, `TxCommit`).  On failure the caller
    /// must invoke [`EagerTx::rollback`].
    pub fn try_commit(&mut self) -> Result<CommitOutcome, TxCtl> {
        if let Some(serial) = &mut self.serial {
            return Ok(serial.commit());
        }
        // Read-only fast path: every read was validated at the time it
        // happened, so nothing further is required.
        if self.locks.is_empty() {
            if self.snapshot {
                // The snapshot commit did zero read-set pushes and performs
                // zero commit-time orec loads.
                TxStats::bump(&self.common.thread.stats.ro_fast_commits);
            }
            for &(addr, words) in &self.frees {
                self.system
                    .heap
                    .dealloc_for(&self.common.thread, addr, words);
            }
            self.reset_logs();
            self.common.thread.exit_tx();
            return Ok(CommitOutcome::read_only());
        }

        // Stamped after the lock phase: every orec this commit will touch is
        // already held, which is what makes a non-unique (lazy) stamp sound.
        let stamp = self.system.clock.commit_stamp(&self.common.thread.stats);
        let end = stamp.ts;
        // Fast path: if no other transaction committed since we started, the
        // read set cannot have been invalidated.  Requires a *unique* stamp —
        // a lazy stamp may be shared with a concurrent committer, so lazy
        // commits always validate.
        if !stamp.unique || end != self.start + 1 {
            for e in self.reads.iter() {
                // The stripe index was cached when the read was validated,
                // so validation does not hash the address a second time.
                let o = self.system.orecs.load(e.stripe);
                let ok = if o.is_locked() {
                    o.is_locked_by(self.me())
                } else if o.version() <= self.start {
                    true
                } else {
                    self.system
                        .clock
                        .note_stale(o.version(), &self.common.thread.stats);
                    false
                };
                if !ok {
                    return Err(TxCtl::Abort(AbortReason::CommitValidation));
                }
            }
        }

        // The transaction is committed: release locks at the new version.
        let written = self.locks.take_entries();
        for &idx in &written {
            self.system.orecs.store(idx, OrecValue::unlocked(end));
        }
        // Finalize deferred frees; allocations simply survive.
        for &(addr, words) in &self.frees {
            self.system
                .heap
                .dealloc_for(&self.common.thread, addr, words);
        }
        self.reset_logs();
        // Publish the commit epoch only now that every lock is released and
        // the write-back is visible; later begins start at or above `end`,
        // which also bounds the quiescence wait below.
        self.common.thread.publish_epoch(end);
        self.common.thread.exit_tx();
        // Privatization-safety quiescence (Algorithm 9, line 20).
        self.system.quiesce(&self.common.thread, end);
        Ok(CommitOutcome::software_writer(written, end))
    }

    /// Rolls back and materialises the wait condition for a deschedule
    /// request.  Returns `Err` (with the transaction already rolled back) if
    /// the condition could not be captured consistently, in which case the
    /// driver simply re-executes the transaction.
    pub fn rollback_for_deschedule(&mut self, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        if let Some(serial) = &mut self.serial {
            return serial.rollback_for_deschedule(spec, &mut self.common);
        }
        match spec {
            WaitSpec::ReadSetValues => {
                let pairs = self.common.waitset.drain_pairs();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Addrs(addrs) => {
                // Record the write-set high-water mark now: the undo log is
                // drained below, before `rollback` can observe its size.
                TxStats::record_max(
                    &self.common.thread.stats.write_set_max,
                    self.undos.len() as u64,
                );
                // Algorithm 6: undo writes first so memory shows the state
                // from before the transaction, then read the requested
                // addresses while still holding our locks, validating each
                // against the start time so the snapshot is consistent.
                for e in self.undos.iter().rev() {
                    self.system.heap.store(e.addr, e.val);
                }
                self.undos.clear();
                let mut pairs = Vec::with_capacity(addrs.len());
                let mut consistent = true;
                for addr in addrs {
                    let o = self.system.orecs.load_for(addr);
                    let ok = if o.is_locked() {
                        o.is_locked_by(self.me())
                    } else {
                        o.version() <= self.start
                    };
                    if !ok {
                        consistent = false;
                        break;
                    }
                    pairs.push((addr, self.system.heap.load(addr)));
                }
                self.rollback();
                if consistent {
                    Ok(WaitCondition::ValuesChanged(pairs))
                } else {
                    Err(TxCtl::Abort(AbortReason::ReadConflict))
                }
            }
            WaitSpec::Pred { f, args } => {
                self.rollback();
                Ok(WaitCondition::Pred { f, args })
            }
            WaitSpec::OrigReadLocks => {
                // Handled by the driver (it needs the read-orec list *and*
                // the registry); reaching this point is a logic error.
                self.rollback();
                Err(TxCtl::Abort(AbortReason::ReadConflict))
            }
        }
    }
}

impl Drop for EagerTx {
    fn drop(&mut self) {
        // Recycle the attempt's access sets so the next attempt (or the
        // thread's next transaction) reuses their capacity.
        let thread = Arc::clone(&self.common.thread);
        thread.put_read_set(std::mem::take(&mut self.reads));
        thread.put_write_log(std::mem::take(&mut self.undos));
        thread.put_index_set(std::mem::take(&mut self.locks));
        // The Extend-mode stripe cover is an index set, not a read set: it
        // must not feed the `read_set_max` high-water mark (snapshot commits
        // keep no read set by construction).
        thread
            .pool
            .put_index_set(std::mem::take(&mut self.snap_cover));
    }
}

impl Tx for EagerTx {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        // Serial attempts read directly: the gate holder runs alone.  Their
        // reads are never value-logged — a serial `Retry` relogs in
        // SoftwareRetry mode (see the driver's ReadSetValues dispatch).
        if let Some(serial) = &self.serial {
            return Ok(serial.read(addr));
        }
        if self.snapshot {
            return self.snapshot_read(addr);
        }
        // Algorithm 10, TxRead: atomically read lock–value–lock and accept
        // only if the snapshot is consistent and not too new.
        let idx = self.system.orecs.index_for(addr);
        let before = self.system.orecs.load(idx);
        let val = self.system.heap.load(addr);
        let after = self.system.orecs.load(idx);

        if before.is_locked_by(self.me()) {
            self.retry_log(addr, val);
            return Ok(val);
        }
        if before == after && !before.is_locked() {
            if before.version() <= self.start {
                // The stripe computed for this validation is cached in the
                // entry, so commit-time re-validation never hashes again.
                self.reads.record(addr, idx);
                self.retry_log(addr, val);
                return Ok(val);
            }
            self.system
                .clock
                .note_stale(before.version(), &self.common.thread.stats);
        }
        Err(TxCtl::Abort(AbortReason::ReadConflict))
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        if let Some(serial) = &mut self.serial {
            serial.write(addr, val);
            return Ok(());
        }
        if self.snapshot {
            // Discovered-read-only speculation failed: the driver upgrades
            // the transaction to a full update attempt and restarts it.
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        // Algorithm 10, TxWrite: acquire the orec, log the old value (first
        // write per address only — the log is keyed by address), update in
        // place.  The stripe cover of the write set is the lock set
        // (`self.locks`), so the undo log's own cover is left degenerate
        // (constant index) rather than maintained for nobody.
        self.acquire(addr)?;
        let old = self.system.heap.load(addr);
        self.undos.record_first(addr, old, || 0);
        self.system.heap.store(addr, val);
        Ok(())
    }

    fn read_for_write(&mut self, addr: Addr) -> TxResult<u64> {
        if self.serial.is_some() {
            return self.read(addr);
        }
        if self.snapshot {
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        // "Read for write" (§2.2.4): acquire the lock immediately and do not
        // add the address to the read set — it is protected by the lock.
        self.acquire(addr)?;
        let val = self.system.heap.load(addr);
        self.retry_log(addr, val);
        Ok(val)
    }

    fn alloc(&mut self, words: usize) -> TxResult<Addr> {
        if let Some(serial) = &mut self.serial {
            return serial
                .alloc(words)
                .ok_or(TxCtl::Abort(AbortReason::OutOfMemory));
        }
        if self.snapshot {
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        match self.system.heap.alloc_for(&self.common.thread, words) {
            Some(addr) => {
                self.mallocs.push((addr, words));
                Ok(addr)
            }
            None => Err(TxCtl::Abort(AbortReason::OutOfMemory)),
        }
    }

    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
        if let Some(serial) = &mut self.serial {
            serial.free(addr, words);
            return Ok(());
        }
        if self.snapshot {
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        self.frees.push((addr, words));
        Ok(())
    }

    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
        // Used only by transaction-safe condition variables: commit the work
        // so far (breaking atomicity), run the blocking section outside any
        // transaction, then begin a fresh transaction for the remainder.
        if self.serial.is_some() {
            let outcome = self.try_commit()?;
            // Same accounting rule as the non-serial branch below — only
            // writer segments count — plus the serial_commits ⊆ sw_commits
            // invariant the stats docs establish.
            if outcome.was_writer {
                TxStats::bump(&self.common.thread.stats.sw_commits);
                TxStats::bump(&self.common.thread.stats.serial_commits);
            }
            block();
            // Continue in the same (serial) flavour: re-acquire the gate.
            self.serial = Some(SerialAttempt::begin(&self.system, &self.common.thread));
            self.start = self.system.clock.now();
            return Ok(());
        }
        match self.try_commit() {
            Ok(info) => {
                if info.was_writer {
                    TxStats::bump(&self.common.thread.stats.sw_commits);
                }
                block();
                self.start = subscribe_begin(&self.system, &self.common.thread);
                Ok(())
            }
            Err(ctl) => Err(ctl),
        }
    }

    fn explicit_abort(&mut self, code: u8) -> TxCtl {
        TxCtl::Abort(AbortReason::Explicit(code))
    }

    fn common(&self) -> &TxCommon {
        &self.common
    }

    fn common_mut(&mut self) -> &mut TxCommon {
        &mut self.common
    }

    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{TmConfig, TxMode};

    fn setup() -> (Arc<TmSystem>, EagerTx) {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let tx = EagerTx::begin(&system, TxCommon::new(th, TxMode::Software, 0));
        (system, tx)
    }

    #[test]
    fn read_your_own_write() {
        let (_system, mut tx) = setup();
        tx.write(Addr(5), 42).unwrap();
        assert_eq!(tx.read(Addr(5)).unwrap(), 42);
    }

    #[test]
    fn writes_are_in_place_and_undone_on_rollback() {
        let (system, tx) = setup();
        system.heap.store(Addr(5), 7);
        // Re-begin so the store above predates the transaction.
        let th = system.register_thread();
        let mut tx2 = EagerTx::begin(&system, TxCommon::new(th, TxMode::Software, 0));
        tx2.write(Addr(5), 100).unwrap();
        assert_eq!(system.heap.load(Addr(5)), 100, "eager STM updates in place");
        tx2.rollback();
        assert_eq!(
            system.heap.load(Addr(5)),
            7,
            "rollback restores the old value"
        );
        drop(tx);
    }

    #[test]
    fn commit_releases_locks_at_new_version() {
        let (system, mut tx) = setup();
        tx.write(Addr(9), 3).unwrap();
        let idx = system.orecs.index_for(Addr(9));
        assert!(system.orecs.load(idx).is_locked());
        let info = tx.try_commit().unwrap();
        assert!(info.was_writer);
        assert!(info.commit_time > 0);
        let o = system.orecs.load(idx);
        assert!(!o.is_locked());
        assert_eq!(o.version(), info.commit_time);
        assert_eq!(system.heap.load(Addr(9)), 3);
    }

    #[test]
    fn read_only_commit_is_trivial() {
        let (system, _tx) = setup();
        system.heap.store(Addr(3), 11);
        let th = system.register_thread();
        let mut tx = EagerTx::begin(&system, TxCommon::new(th, TxMode::Software, 0));
        assert_eq!(tx.read(Addr(3)).unwrap(), 11);
        let info = tx.try_commit().unwrap();
        assert!(!info.was_writer);
        assert_eq!(info.commit_time, 0);
    }

    #[test]
    fn conflicting_write_lock_aborts_second_writer() {
        let system = TmSystem::new(TmConfig::small());
        let t1 = system.register_thread();
        let t2 = system.register_thread();
        let mut tx1 = EagerTx::begin(&system, TxCommon::new(t1, TxMode::Software, 0));
        let mut tx2 = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        tx1.write(Addr(4), 1).unwrap();
        assert!(matches!(
            tx2.write(Addr(4), 2),
            Err(TxCtl::Abort(AbortReason::WriteConflict))
        ));
        tx1.rollback();
        tx2.rollback();
    }

    #[test]
    fn read_of_locked_location_aborts() {
        let system = TmSystem::new(TmConfig::small());
        let t1 = system.register_thread();
        let t2 = system.register_thread();
        let mut tx1 = EagerTx::begin(&system, TxCommon::new(t1, TxMode::Software, 0));
        tx1.write(Addr(8), 5).unwrap();
        let mut tx2 = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        assert!(tx2.read(Addr(8)).is_err());
        tx1.rollback();
        tx2.rollback();
    }

    #[test]
    fn stale_read_detected_at_commit() {
        // Two handles are driven from one OS thread, so the committer must
        // not quiesce waiting for the other handle (it could never finish).
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let t1 = system.register_thread();
        let t2 = system.register_thread();
        // tx1 reads addr 6, then tx2 commits a write to it, then tx1 writes
        // something else and tries to commit: validation must fail.
        let mut tx1 = EagerTx::begin(&system, TxCommon::new(t1, TxMode::Software, 0));
        assert_eq!(tx1.read(Addr(6)).unwrap(), 0);
        let mut tx2 = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        tx2.write(Addr(6), 9).unwrap();
        tx2.try_commit().unwrap();
        tx1.write(Addr(7), 1).unwrap();
        assert!(matches!(
            tx1.try_commit(),
            Err(TxCtl::Abort(AbortReason::CommitValidation))
        ));
        tx1.rollback();
        assert_eq!(system.heap.load(Addr(7)), 0);
        assert_eq!(system.heap.load(Addr(6)), 9);
    }

    #[test]
    fn read_after_foreign_commit_aborts_immediately() {
        // See stale_read_detected_at_commit: single-threaded test, two
        // handles, so quiescence must be off.
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let t1 = system.register_thread();
        let t2 = system.register_thread();
        let mut tx1 = EagerTx::begin(&system, TxCommon::new(t1, TxMode::Software, 0));
        let _ = tx1.read(Addr(2)).unwrap();
        // Another transaction commits a write to a different orec: tx1 can
        // still read locations whose version predates its start.
        let mut tx2 = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        tx2.write(Addr(100), 1).unwrap();
        tx2.try_commit().unwrap();
        // Reading the *updated* location must abort tx1 (version too new).
        assert!(tx1.read(Addr(100)).is_err());
        tx1.rollback();
    }

    #[test]
    fn retry_mode_logs_pre_transaction_values() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(12), 50);
        let th = system.register_thread();
        let mut tx = EagerTx::begin(&system, TxCommon::new(th, TxMode::SoftwareRetry, 1));
        assert_eq!(tx.read(Addr(12)).unwrap(), 50);
        tx.write(Addr(12), 99).unwrap();
        // A read-after-write must log the value from *before* the write,
        // because the write is undone when the transaction deschedules.
        assert_eq!(tx.read(Addr(12)).unwrap(), 99);
        assert_eq!(tx.common().waitset.pairs(), vec![(Addr(12), 50)]);
        tx.rollback();
    }

    #[test]
    fn reexecuted_attempts_reuse_pooled_logs() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let mut tx = EagerTx::begin(&system, TxCommon::new(Arc::clone(&th), TxMode::Software, 0));
        let _ = tx.read(Addr(1)).unwrap();
        tx.write(Addr(2), 2).unwrap();
        tx.rollback();
        drop(tx);
        let before = th.stats.snapshot().log_pool_reuses;
        let mut tx = EagerTx::begin(&system, TxCommon::new(Arc::clone(&th), TxMode::Software, 1));
        assert!(
            th.stats.snapshot().log_pool_reuses >= before + 2,
            "the second attempt must recycle the first attempt's containers"
        );
        tx.rollback();
    }

    #[test]
    fn deschedule_rollback_captures_await_values() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(20), 5);
        let th = system.register_thread();
        let mut tx = EagerTx::begin(&system, TxCommon::new(Arc::clone(&th), TxMode::Software, 0));
        assert_eq!(tx.read(Addr(20)).unwrap(), 5);
        tx.write(Addr(20), 6).unwrap();
        let cond = tx
            .rollback_for_deschedule(WaitSpec::Addrs(vec![Addr(20)]))
            .unwrap();
        match cond {
            WaitCondition::ValuesChanged(pairs) => {
                assert_eq!(
                    pairs,
                    vec![(Addr(20), 5)],
                    "must capture the pre-transaction value"
                );
            }
            other => panic!("unexpected condition: {other:?}"),
        }
        assert_eq!(system.heap.load(Addr(20)), 5, "write must be undone");
        let idx = system.orecs.index_for(Addr(20));
        assert!(
            !system.orecs.load(idx).is_locked(),
            "locks must be released"
        );
        assert_eq!(
            th.stats.snapshot().write_set_max,
            1,
            "the Await deschedule path must record the write-set high-water \
             mark before draining the undo log"
        );
    }

    #[test]
    fn transactional_alloc_is_undone_on_rollback() {
        let (system, mut tx) = setup();
        let before = system.heap.allocated_words();
        let a = tx.alloc(8).unwrap();
        assert!(!a.is_null());
        assert_eq!(system.heap.allocated_words(), before + 8);
        tx.rollback();
        assert_eq!(system.heap.allocated_words(), before);
    }

    #[test]
    fn transactional_free_is_deferred_to_commit() {
        let (system, mut tx) = setup();
        let a = system.heap.alloc(4).unwrap();
        let before = system.heap.allocated_words();
        tx.free(a, 4).unwrap();
        assert_eq!(
            system.heap.allocated_words(),
            before,
            "free deferred until commit"
        );
        tx.try_commit().unwrap();
        assert_eq!(system.heap.allocated_words(), before - 4);
    }

    #[test]
    fn read_orec_indices_deduplicate() {
        let (_system, mut tx) = setup();
        let _ = tx.read(Addr(30)).unwrap();
        let _ = tx.read(Addr(30)).unwrap();
        let _ = tx.read(Addr(31)).unwrap();
        let idx = tx.read_orec_indices();
        assert!(idx.len() <= 2);
        tx.rollback();
    }

    #[test]
    fn rollback_is_idempotent() {
        let (system, mut tx) = setup();
        tx.write(Addr(40), 1).unwrap();
        tx.rollback();
        tx.rollback();
        assert_eq!(system.heap.load(Addr(40)), 0);
    }

    fn begin_snapshot(system: &Arc<TmSystem>) -> EagerTx {
        let th = system.register_thread();
        EagerTx::begin(
            system,
            TxCommon::new(th, TxMode::Software, 0).with_kind(TxKind::ReadOnly),
        )
    }

    #[test]
    fn snapshot_read_keeps_no_read_set_and_commits_free() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(3), 7);
        system.heap.store(Addr(4), 8);
        let mut tx = begin_snapshot(&system);
        assert!(tx.snapshot, "small config enables snapshots");
        assert_eq!(tx.read(Addr(3)).unwrap(), 7);
        assert_eq!(tx.read(Addr(4)).unwrap(), 8);
        assert!(tx.reads.is_empty(), "snapshot reads record nothing");
        let th = Arc::clone(&tx.common.thread);
        let info = tx.try_commit().unwrap();
        assert!(!info.was_writer);
        drop(tx);
        let snap = th.stats.snapshot();
        assert_eq!(snap.ro_fast_commits, 1);
        assert_eq!(snap.read_set_max, 0, "no read set ever pooled back");
    }

    #[test]
    fn snapshot_write_aborts_with_read_only_write() {
        let system = TmSystem::new(TmConfig::small());
        let mut tx = begin_snapshot(&system);
        assert!(matches!(
            tx.write(Addr(1), 9),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        assert!(matches!(
            tx.read_for_write(Addr(1)),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        assert!(matches!(
            tx.alloc(4),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        assert!(matches!(
            tx.free(Addr(1), 1),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        tx.rollback();
    }

    #[test]
    fn snapshot_refreshes_at_first_read_instead_of_aborting() {
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx = begin_snapshot(&system);
        // A foreign commit moves Addr(6) past the snapshot's start.
        let t2 = system.register_thread();
        let mut w = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        w.write(Addr(6), 9).unwrap();
        w.try_commit().unwrap();
        // First read: too new, but nothing observed yet — refresh, not abort.
        assert_eq!(tx.read(Addr(6)).unwrap(), 9);
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        assert_eq!(th.stats.snapshot().snapshot_refreshes, 1);
    }

    #[test]
    fn snapshot_on_aborts_on_too_new_after_first_read() {
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 0, "pin the snapshot");
        let t2 = system.register_thread();
        let mut w = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        w.write(Addr(6), 9).unwrap();
        w.try_commit().unwrap();
        assert!(matches!(
            tx.read(Addr(6)),
            Err(TxCtl::Abort(AbortReason::ReadConflict))
        ));
        tx.rollback();
    }

    #[test]
    fn snapshot_extend_advances_past_disjoint_commits() {
        let system = TmSystem::new(
            TmConfig::small()
                .without_quiescence()
                .with_snapshot(SnapshotMode::Extend),
        );
        system.heap.store(Addr(5), 1);
        // An address on a different orec stripe than Addr(5).
        let other = (6..300)
            .map(Addr)
            .find(|&a| system.orecs.index_for(a) != system.orecs.index_for(Addr(5)))
            .unwrap();
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 1, "pin the snapshot");
        // A commit to a *different* stripe moves the clock forward.
        let t2 = system.register_thread();
        let mut w = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        w.write(other, 9).unwrap();
        w.try_commit().unwrap();
        // The cover (only Addr(5)'s stripe) still holds at the old start, so
        // the snapshot extends instead of aborting.
        assert_eq!(tx.read(other).unwrap(), 9);
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        let snap = th.stats.snapshot();
        assert_eq!(snap.snapshot_refreshes, 1);
        assert_eq!(snap.ro_fast_commits, 1);
        assert_eq!(snap.read_set_max, 0);
    }

    #[test]
    fn snapshot_extend_aborts_when_a_covered_stripe_moves() {
        let system = TmSystem::new(
            TmConfig::small()
                .without_quiescence()
                .with_snapshot(SnapshotMode::Extend),
        );
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 0);
        // A commit to the *same* address invalidates the cover; the next
        // too-new read cannot extend.
        let t2 = system.register_thread();
        let mut w = EagerTx::begin(&system, TxCommon::new(t2, TxMode::Software, 0));
        w.write(Addr(5), 9).unwrap();
        w.try_commit().unwrap();
        assert!(tx.read(Addr(5)).is_err());
        tx.rollback();
    }

    #[test]
    fn snapshot_off_disables_the_fast_path() {
        let system = TmSystem::new(TmConfig::small().with_snapshot(SnapshotMode::Off));
        let mut tx = begin_snapshot(&system);
        assert!(!tx.snapshot);
        assert_eq!(tx.read(Addr(3)).unwrap(), 0);
        assert_eq!(tx.reads.len(), 1, "falls back to the tracked read path");
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        assert_eq!(th.stats.snapshot().ro_fast_commits, 0);
    }
}
