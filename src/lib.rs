//! # tm-repro — Practical Condition Synchronization for Transactional Memory
//!
//! A from-scratch Rust reproduction of *"Practical Condition Synchronization
//! for Transactional Memory"* (Wang, EuroSys 2016 line of work): the
//! **Deschedule** mechanism and the three linguistic constructs built on it —
//! `Retry`, `Await` and `WaitPred` — implemented over three transactional
//! memory runtimes (an eager undo-log STM, a lazy redo-log STM, and a
//! simulated best-effort HTM), together with every baseline, workload and
//! benchmark the paper evaluates.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof and provides a [`prelude`] for applications.
//!
//! ## Quick start
//!
//! ```
//! use tm_repro::prelude::*;
//! use std::sync::Arc;
//!
//! // A transactional system plus the eager-STM runtime over it.
//! let rt = RuntimeKind::EagerStm.build(TmConfig::small());
//! let system = Arc::clone(rt.system());
//!
//! // Shared state lives in the transactional heap.
//! let balance = TmVar::<u64>::alloc(&system, 100);
//!
//! // A waiter that blocks until the balance covers a withdrawal.
//! let rt2 = rt.clone();
//! let system2 = Arc::clone(&system);
//! let balance2 = balance.clone();
//! let waiter = std::thread::spawn(move || {
//!     let th = system2.register_thread();
//!     rt2.atomically(&th, |tx| {
//!         let b = balance2.get(tx)?;
//!         if b < 150 {
//!             return retry(tx); // sleep until something we read changes
//!         }
//!         balance2.set(tx, b - 150)?;
//!         Ok(b)
//!     })
//! });
//!
//! // A writer whose commit establishes the precondition and wakes the waiter.
//! let th = system.register_thread();
//! rt.atomically(&th, |tx| {
//!     let b = balance.get(tx)?;
//!     balance.set(tx, b + 100)
//! });
//!
//! assert_eq!(waiter.join().unwrap(), 200);
//! assert_eq!(balance.load_direct(&system), 50);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] (`tm-core`) | word heap, ownership records, clock, thread registry, shared access-set layer, sharded waiter registry, transaction traits |
//! | [`eager`] (`stm-eager`) | Appendix A undo-log STM (paper: "Eager STM") |
//! | [`lazy`] (`stm-lazy`) | TL2-style redo-log STM (paper: "Lazy STM") |
//! | [`htm`] (`htm-sim`) | best-effort HTM runtime over the pluggable `HwTm` hardware plane — simulator backend, real-RTM stub, fault-injection fuzzer (paper: "HTM") |
//! | [`hybrid`] (`tm-hybrid`) | hybrid HTM+STM runtime: hardware fast path over the lazy STM (beyond the paper) |
//! | [`sync`] (`condsync`) | **the contribution**: Deschedule, Retry, Await, WaitPred, plus TMCondVar / Retry-Orig / Restart baselines |
//! | [`structures`] (`tm-sync`) | bounded buffer (Fig. 2.2), queue, stack, counter, barrier, once-cell, latch, Pthreads baseline buffer, and the KV plane: stripe-aligned hash map + ordered (skip-list) index |
//! | [`workloads`] (`tm-workloads`) | producer/consumer micro-benchmark, PARSEC-like kernels, Zipfian session-store scenario, Table 2.1 accounting |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

/// The shared substrate (`tm-core`): heap, metadata, traits.
pub use tm_core as core;

/// The eager (undo-log) software TM (`stm-eager`).
pub use stm_eager as eager;

/// The lazy (redo-log) software TM (`stm-lazy`).
pub use stm_lazy as lazy;

/// The best-effort HTM runtime and its simulated hardware plane (`htm-sim`).
pub use htm_sim as htm;

/// The hybrid HTM+STM runtime (`tm-hybrid`): hardware fast path, lazy-STM
/// software fallback, serial gate as the last rung.
pub use tm_hybrid as hybrid;

/// The condition-synchronization mechanisms (`condsync`) — the paper's
/// contribution.
pub use condsync as sync;

/// Transactional data structures and lock-based baselines (`tm-sync`).
pub use tm_sync as structures;

/// Workload drivers for the evaluation (`tm-workloads`).
pub use tm_workloads as workloads;

/// Everything an application normally needs, importable with one `use`.
pub mod prelude {
    pub use condsync::{
        await_addrs, await_for, await_one, await_one_for, cancel, cancel_thread, restart, retry,
        retry_for, retry_orig, timed_out, wait_interrupted, wait_pred, wait_pred_for, wake_reason,
        was_cancelled, Mechanism, TmCondVar, WakeReason,
    };
    pub use tm_core::{
        Addr, Semaphore, TmArray, TmConfig, TmRt, TmRuntime, TmSystem, TmVar, Tx, TxCtl, TxResult,
    };
    pub use tm_sync::{
        BarrierWait, MapLayout, PthreadBuffer, TmBarrier, TmBoundedBuffer, TmCounter, TmHashMap,
        TmLatch, TmOnceCell, TmOrderedMap, TmQueue, TmStack,
    };
    pub use tm_workloads::runtime::{AnyRuntime, RuntimeKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_quickstart_path_compiles_and_runs() {
        let rt = RuntimeKind::LazyStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let v = TmVar::<u64>::alloc(&system, 1);
        let th = system.register_thread();
        let doubled = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x * 2)?;
            Ok(x * 2)
        });
        assert_eq!(doubled, 2);
    }

    #[test]
    fn all_mechanism_constructors_are_reachable_through_the_prelude() {
        assert_eq!(Mechanism::ALL.len(), 7);
        assert!(Mechanism::Retry.is_deschedule_based());
    }
}
